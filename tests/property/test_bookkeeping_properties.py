"""Property tests: incremental bookkeeping always equals a fresh recompute.

The bitmask/bucket bookkeeping in :mod:`repro.mapping.blockinfo` maintains
three pieces of derived state incrementally — per-block ``valid_count``,
the die's GC candidate set and its invalid-count buckets.  Whatever random
sequence of frontier takes, writes, invalidations, seals, erases and
retirements happens, each must agree with the from-scratch reference
(popcount of the bitmask, full scan over the blocks), and greedy victim
selection over the buckets must pick exactly the block a scan would.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.mapping import (
    BlockState,
    DieBookkeeping,
    FlashSpaceEngine,
    ManagementStats,
    choose_victim_greedy,
)

PAGES_PER_BLOCK = 4
BLOCKS_PER_DIE = 6

# one op drives the die through its bookkeeping API; arguments are drawn
# modulo whatever is currently legal, so every sequence is executable
ops = st.lists(
    st.tuples(
        st.sampled_from(["take", "write", "invalidate", "seal", "erase", "bad"]),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=160,
)


def reference_valid_count(info) -> int:
    return info.valid_mask.bit_count()


def apply_op(die: DieBookkeeping, open_blocks: list, kind: str, arg: int) -> None:
    if kind == "take":
        if die.free_count > 0:
            open_blocks.append(die.take_free_block())
    elif kind == "write" and open_blocks:
        info = open_blocks[arg % len(open_blocks)]
        if not info.is_full:
            info.note_write(info.written, now_us=float(arg))
        if info.is_full:
            open_blocks.remove(info)
    elif kind == "invalidate":
        targets = [b for b in die.blocks if b.valid_count > 0]
        if targets:
            info = targets[arg % len(targets)]
            info.invalidate(info.valid_pages()[arg % info.valid_count])
    elif kind == "seal" and open_blocks:
        info = open_blocks[arg % len(open_blocks)]
        info.seal()
        if info.is_full:
            open_blocks.remove(info)
    elif kind == "erase":
        fulls = [b for b in die.blocks if b.state is BlockState.FULL]
        if fulls:
            die.return_erased_block(fulls[arg % len(fulls)].block)
    elif kind == "bad":
        # retire FREE or FULL blocks (as the engine does after a failing
        # erase); keep at least half the die alive so sequences stay long
        candidates = [
            b for b in die.blocks if b.state in (BlockState.FREE, BlockState.FULL)
        ]
        alive = sum(1 for b in die.blocks if b.state is not BlockState.BAD)
        if candidates and alive > BLOCKS_PER_DIE // 2:
            die.mark_bad(candidates[arg % len(candidates)].block)


@settings(max_examples=120, deadline=None)
@given(ops)
def test_incremental_state_matches_recompute(operations):
    die = DieBookkeeping(die=0, blocks_per_die=BLOCKS_PER_DIE, pages_per_block=PAGES_PER_BLOCK)
    open_blocks: list = []
    for kind, arg in operations:
        apply_op(die, open_blocks, kind, arg)
        # after *every* op: counters, candidate set and buckets all agree
        # with a from-scratch recomputation
        die.check_invariants()
        for info in die.blocks:
            assert info.valid_count == reference_valid_count(info)
        assert die.has_reclaimable == bool(die.gc_candidates_scan())
        assert [b.block for b in die.gc_candidates()] == [
            b.block for b in die.gc_candidates_scan()
        ]


@settings(max_examples=120, deadline=None)
@given(ops)
def test_bucketed_greedy_equals_scanning_greedy(operations):
    die = DieBookkeeping(die=0, blocks_per_die=BLOCKS_PER_DIE, pages_per_block=PAGES_PER_BLOCK)
    open_blocks: list = []
    for kind, arg in operations:
        apply_op(die, open_blocks, kind, arg)
        fast = die.greedy_victim()
        slow = choose_victim_greedy(die.gc_candidates_scan())
        assert (fast is None) == (slow is None)
        if fast is not None:
            assert fast.block == slow.block


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=11), min_size=40, max_size=250),
    st.sampled_from(["greedy", "cost_benefit"]),
)
def test_engine_keeps_bookkeeping_invariants_under_gc(keys, policy):
    geometry = FlashGeometry(
        channels=1,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=8,
        page_size=64,
        oob_size=8,
        max_pe_cycles=100_000,
    )
    device = FlashDevice(geometry, timing=instant_timing())
    books = {
        d: DieBookkeeping(d, geometry.blocks_per_die, geometry.pages_per_block)
        for d in range(2)
    }
    engine = FlashSpaceEngine(
        device, [0, 1], books, ManagementStats(), gc_policy=policy
    )
    at = 0.0
    for i, key in enumerate(keys * 3):
        at = engine.write(key, bytes([i % 256]), at, group=key % 2 or None)
    # check_consistency also runs DieBookkeeping.check_invariants per die
    engine.check_consistency()
