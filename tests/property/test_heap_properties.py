"""Property-based tests: heap files behave like a dict of rows."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import BufferPool, HeapFile, Schema, int_col, varchar_col

from tests.db.conftest import MemoryBackend


def make_heap():
    backend = MemoryBackend(page_size=256, io_cost=0.0)
    sid = backend.create_space("h")
    pool = BufferPool(backend, capacity=16, flusher_interval=0)
    return HeapFile(pool, sid, Schema([int_col("k"), varchar_col("v", 40)]))


text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40
)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 1000), text),
        st.tuples(st.just("update"), st.integers(0, 30), text),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just("")),
    ),
    max_size=100,
)


@settings(max_examples=50, deadline=None)
@given(ops)
def test_heap_matches_dict(operations):
    heap = make_heap()
    live: dict = {}  # rid -> row
    order: list = []  # insertion order of live rids
    at = 0.0
    for kind, key, value in operations:
        if kind == "insert":
            rid, at = heap.insert((key, value), at)
            live[rid] = (key, value)
            order.append(rid)
        elif kind == "update" and order:
            rid = order[key % len(order)]
            row = (live[rid][0], value)
            new_rid, at = heap.update(rid, row, at)
            if new_rid != rid:
                del live[rid]
                order.remove(rid)
                order.append(new_rid)
            live[new_rid] = row
        elif kind == "delete" and order:
            rid = order[key % len(order)]
            at = heap.delete(rid, at)
            del live[rid]
            order.remove(rid)
    assert heap.row_count == len(live)
    for rid, row in live.items():
        assert heap.read(rid, at)[0] == row
    scanned = {rid: row for rid, row, __ in heap.scan(at)}
    assert scanned == live
