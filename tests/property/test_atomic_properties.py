"""Property-based tests: atomic batches are all-or-nothing across crashes."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.mapping import DieBookkeeping, FlashSpaceEngine, ManagementStats


def make_engine(device=None):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=10,
        pages_per_block=8,
        page_size=64,
        oob_size=16,
        max_pe_cycles=1_000_000,
    )
    if device is None:
        device = FlashDevice(geometry, timing=instant_timing())
    dies = [0, 1]
    books = {d: DieBookkeeping(d, geometry.blocks_per_die, geometry.pages_per_block) for d in dies}
    return device, FlashSpaceEngine(device, dies, books, ManagementStats())


ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 9), st.just(0)),
        st.tuples(st.just("atomic"), st.integers(0, 7), st.integers(2, 3)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(ops)
def test_recovery_state_is_a_prefix_consistent_snapshot(operations):
    """After any op sequence, a recovered engine agrees with the final
    committed state — batches appear fully or not at all."""
    device, engine = make_engine()
    shadow: dict[int, bytes] = {}
    serial = 0
    at = 0.0
    for op in operations:
        serial += 1
        if op[0] == "write":
            key = op[1]
            payload = bytes([serial % 256])
            at = engine.write(key, payload, at)
            shadow[key] = payload
        else:
            base, size = op[1], op[2]
            entries = [(base + i, bytes([serial % 256, i])) for i in range(size)]
            at = engine.write_atomic(entries, at)
            for key, payload in entries:
                shadow[key] = payload

    __, recovered = make_engine(device=device)
    recovered.rebuild_from_flash(at)
    assert set(recovered.keys()) == set(shadow)
    for key, payload in shadow.items():
        assert recovered.read(key, at)[0] == payload
    recovered.check_consistency()
