"""Property-based tests: flash space engine invariants under random ops.

The central invariant of any flash management layer: *whatever sequence of
writes, overwrites, invalidations and GC happens, every live logical page
maps to exactly one valid physical page holding its latest data.*
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.mapping import DieBookkeeping, FlashSpaceEngine, ManagementStats


def make_engine(dies=2):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=8,
        page_size=64,
        oob_size=8,
        max_pe_cycles=100_000,
    )
    device = FlashDevice(geometry, timing=instant_timing())
    die_list = list(range(dies))
    books = {
        d: DieBookkeeping(d, geometry.blocks_per_die, geometry.pages_per_block)
        for d in die_list
    }
    return FlashSpaceEngine(device, die_list, books, ManagementStats())


# an op is (kind, key, group) over a small key space so overwrites are common
ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "invalidate"]),
        st.integers(min_value=0, max_value=15),
        st.sampled_from([None, 1, 2]),
    ),
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_latest_write_wins_and_mapping_consistent(operations):
    engine = make_engine()
    shadow: dict[int, bytes] = {}
    at = 0.0
    for i, (kind, key, group) in enumerate(operations):
        if kind == "write":
            payload = bytes([i % 256, key])
            at = engine.write(key, payload, at, group=group)
            shadow[key] = payload
        else:
            engine.invalidate(key)
            shadow.pop(key, None)
    engine.check_consistency()
    assert engine.live_pages() == len(shadow)
    for key, payload in shadow.items():
        assert engine.read(key, at)[0] == payload
    for key in set(range(16)) - set(shadow):
        assert not engine.contains(key)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=7), min_size=30, max_size=200),
    st.integers(min_value=0, max_value=1),
)
def test_heavy_overwrite_forces_gc_but_preserves_data(keys, grouped):
    engine = make_engine(dies=1)
    shadow = {}
    at = 0.0
    for i, key in enumerate(keys * 4):
        payload = bytes([i % 256])
        at = engine.write(key, payload, at, group=1 if grouped else None)
        shadow[key] = payload
    engine.check_consistency()
    for key, payload in shadow.items():
        assert engine.read(key, at)[0] == payload


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_valid_page_count_equals_live_pages(data):
    engine = make_engine()
    at = 0.0
    n = data.draw(st.integers(min_value=0, max_value=60))
    for i in range(n):
        key = data.draw(st.integers(min_value=0, max_value=9))
        at = engine.write(key, bytes([i % 256]), at)
    bookkeeping_valid = sum(
        books.total_valid_pages() for books in engine.books.values()
    )
    assert bookkeeping_valid == engine.live_pages()
