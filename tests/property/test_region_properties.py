"""Property-based tests: Region behaves like a guarded dict of pages."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import NoFTLStore, RegionConfig, RegionError, RegionFullError
from repro.flash import FlashGeometry, instant_timing


def make_region():
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=10,
        pages_per_block=8,
        page_size=128,
        oob_size=16,
        max_pe_cycles=1_000_000,
    )
    store = NoFTLStore.create(geometry, timing=instant_timing())
    return store, store.create_region(RegionConfig(name="rg"), num_dies=2)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 6)),
        st.tuples(st.just("write"), st.integers(0, 40)),
        st.tuples(st.just("free"), st.integers(0, 40)),
        st.tuples(st.just("read"), st.integers(0, 40)),
    ),
    max_size=80,
)


@settings(max_examples=50, deadline=None)
@given(ops)
def test_region_matches_model(operations):
    store, region = make_region()
    allocated: set[int] = set()
    written: dict[int, bytes] = {}
    t = 0.0
    for kind, arg in operations:
        if kind == "alloc":
            try:
                pages = region.allocate(arg)
            except RegionFullError:
                assert region.free_pages() < arg
                continue
            assert not (set(pages) & allocated), "allocator handed out a live rpn"
            allocated.update(pages)
        elif kind == "write":
            payload = bytes([arg % 256])
            if arg in allocated:
                t = region.write(arg, payload, t)
                written[arg] = payload
            else:
                try:
                    region.write(arg, payload, t)
                    raise AssertionError("write to unallocated rpn succeeded")
                except RegionError:
                    pass
        elif kind == "free":
            if arg in allocated:
                region.free([arg])
                allocated.discard(arg)
                written.pop(arg, None)
            else:
                try:
                    region.free([arg])
                    raise AssertionError("free of unallocated rpn succeeded")
                except RegionError:
                    pass
        elif kind == "read":
            if arg in written:
                assert region.read(arg, t)[0] == written[arg]
    assert region.used_pages() == len(allocated)
    assert region.engine.live_pages() == len(written)
    region.engine.check_consistency()


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 60), st.integers(0, 59))
def test_allocate_free_allocate_roundtrip(count, free_index):
    __, region = make_region()
    count = min(count, region.capacity_pages())
    pages = region.allocate(count)
    victim = pages[free_index % len(pages)]
    region.free([victim])
    assert region.used_pages() == count - 1
    [again] = region.allocate(1)
    assert again == victim  # freed rpns recycle first
