"""Property-based tests: the device enforces NAND rules for any op order."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.flash import (
    FlashDevice,
    FlashError,
    PhysicalBlockAddress,
    PhysicalPageAddress,
    instant_timing,
    small_geometry,
)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("program"), st.integers(0, 3), st.integers(0, 3), st.integers(0, 15)),
        st.tuples(st.just("read"), st.integers(0, 3), st.integers(0, 3), st.integers(0, 15)),
        st.tuples(st.just("erase"), st.integers(0, 3), st.integers(0, 3), st.just(0)),
    ),
    max_size=100,
)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_device_matches_reference_model(operations):
    """Shadow-model the chip: pages hold bytes or nothing; programs must be
    sequential per block; any op either succeeds in both models or raises."""
    device = FlashDevice(small_geometry(), timing=instant_timing())
    shadow: dict[tuple[int, int, int], bytes] = {}
    write_pointer: dict[tuple[int, int], int] = {}
    serial = 0
    for kind, die, block, page in operations:
        serial += 1
        if kind == "program":
            payload = bytes([serial % 256])
            expected_ok = write_pointer.get((die, block), 0) == page
            try:
                device.program_page(PhysicalPageAddress(die, block, page), payload)
                assert expected_ok, "device accepted an out-of-order program"
                shadow[(die, block, page)] = payload
                write_pointer[(die, block)] = page + 1
            except FlashError:
                assert not expected_ok, "device rejected a legal program"
        elif kind == "read":
            expected = shadow.get((die, block, page))
            try:
                result = device.read_page(PhysicalPageAddress(die, block, page))
                assert expected is not None, "device served an unprogrammed page"
                assert result.data == expected
            except FlashError:
                assert expected is None, "device failed a legal read"
        else:  # erase
            device.erase_block(PhysicalBlockAddress(die, block))
            write_pointer[(die, block)] = 0
            for key in [k for k in shadow if k[0] == die and k[1] == block]:
                del shadow[key]

    # final state agrees everywhere
    g = device.geometry
    for die in range(g.dies):
        for block in range(g.blocks_per_die):
            device_block = device.dies[die].blocks[block]
            assert device_block.write_pointer == write_pointer.get((die, block), 0)
            for page in range(g.pages_per_block):
                if (die, block, page) in shadow:
                    assert device_block.read(page)[0] == shadow[(die, block, page)]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6, width=32), min_size=1, max_size=40),
    st.lists(
        st.one_of(st.just(0.0), st.floats(min_value=0.015625, max_value=1000.0, width=32)),
        min_size=1,
        max_size=40,
    ),
)
def test_timeline_reservations_never_overlap(earliest_times, durations):
    """Gap-filling reservations are pairwise disjoint for positive durations."""
    from repro.flash import ResourceTimeline

    timeline = ResourceTimeline()
    granted = []
    for earliest, duration in zip(earliest_times, durations):
        start, end = timeline.reserve(earliest, duration)
        assert start >= earliest
        assert end - start == duration
        if duration > 0:
            granted.append((start, end))
    granted.sort()
    for (s1, e1), (s2, e2) in zip(granted, granted[1:]):
        assert e1 <= s2, f"overlap: ({s1},{e1}) vs ({s2},{e2})"
