"""Property-based tests: B+-tree behaves like a sorted multimap."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import BTree, BufferPool, RID, Schema, int_col

from tests.db.conftest import MemoryBackend


def make_tree(unique=False):
    backend = MemoryBackend(page_size=256, io_cost=0.0)
    sid = backend.create_space("idx")
    pool = BufferPool(backend, capacity=64, flusher_interval=0)
    return BTree(pool, sid, Schema([int_col("k")]), unique=unique)


keys = st.integers(min_value=-(2**32), max_value=2**32)


@settings(max_examples=50, deadline=None)
@given(st.lists(keys, max_size=150))
def test_matches_sorted_reference(inserted):
    tree = make_tree()
    reference = []
    for i, key in enumerate(inserted):
        rid = RID(i, 0)
        tree.insert((key,), rid, 0.0)
        reference.append(((key,), rid))
    entries, __ = tree.range_scan(None, None, 0.0)
    assert sorted(k for k, __ in entries) == [k for k, __ in entries]
    assert sorted(entries) == sorted(reference)
    tree.check_invariants()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 30)), max_size=120))
def test_insert_delete_matches_multiset(operations):
    tree = make_tree()
    from collections import Counter

    reference: Counter = Counter()
    serial = 0
    for is_insert, key in operations:
        if is_insert:
            tree.insert((key,), RID(key, serial % 1000), 0.0)
            reference[key] += 1
            serial += 1
        else:
            deleted, __ = tree.delete((key,), None, 0.0)
            assert deleted == (reference[key] > 0)
            if deleted:
                reference[key] -= 1
    for key in range(31):
        rids, __ = tree.search_all((key,), 0.0)
        assert len(rids) == reference[key]
    assert tree.entry_count == sum(reference.values())
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(st.lists(keys, min_size=1, max_size=120), st.tuples(keys, keys))
def test_range_scan_equals_filter(inserted, bounds):
    lo, hi = min(bounds), max(bounds)
    tree = make_tree()
    for i, key in enumerate(sorted(set(inserted))):
        tree.insert((key,), RID(i, 0), 0.0)
    entries, __ = tree.range_scan((lo,), (hi,), 0.0)
    expected = sorted(k for k in set(inserted) if lo <= k <= hi)
    assert [k[0] for k, __ in entries] == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(keys, unique=True, max_size=100))
def test_unique_index_search_exact(inserted):
    tree = make_tree(unique=True)
    for i, key in enumerate(inserted):
        tree.insert((key,), RID(i, 1), 0.0)
    for i, key in enumerate(inserted):
        rid, __ = tree.search((key,), 0.0)
        assert rid == RID(i, 1)
