"""Array-core equivalence: packed fast paths and full command paths agree.

The engine's write/GC/WL hot paths run against flat column storage
(``array``/``bytearray`` valid masks and counters, integer-packed
physical addresses) and skip straight to the device's packed command
variants whenever no fault injector or event bus is attached.  Attaching
an event bus forces every operation back through the full command
implementations.  Both executions of the same seeded workload must land
on the *same* golden snapshots pinned in ``test_engine_equivalence.py`` —
the fast path is an encoding change, never a behaviour change.
"""

import pytest

from tests.mapping.equivalence_workloads import run_engine_workload
from tests.mapping.test_engine_equivalence import GOLDEN


@pytest.mark.parametrize("policy,seed", sorted(GOLDEN))
def test_slow_path_matches_goldens(policy, seed):
    """With an event bus attached (fast paths disabled) the goldens hold."""
    snapshot = run_engine_workload(policy, seed, slow_path=True)
    expected = GOLDEN[(policy, seed)]
    diverged = {
        key: (snapshot[key], want)
        for key, want in expected.items()
        if snapshot[key] != want
    }
    assert not diverged, f"slow path diverged from pinned behaviour: {diverged}"


@pytest.mark.parametrize("policy,seed", [("greedy", 3), ("cost_benefit", 11)])
def test_fast_and_slow_paths_bit_identical(policy, seed):
    """Field-by-field identity of the two execution paths, end to end."""
    fast = run_engine_workload(policy, seed, slow_path=False)
    slow = run_engine_workload(policy, seed, slow_path=True)
    assert fast == slow


def test_blockinfo_views_share_die_columns():
    """BlockInfo objects are row views, not copies: a write through the
    view must be visible in the die's columns and vice versa."""
    from repro.mapping import BlockState, DieBookkeeping

    books = DieBookkeeping(die=0, blocks_per_die=4, pages_per_block=8)
    info = books.take_free_block()
    info.note_write(0, 123.0)
    assert books._valid_count[info.block] == 1
    assert books._last_write_us[info.block] == 123.0
    books._valid_mask[info.block] |= 1 << 3
    books._valid_count[info.block] += 1
    assert info.is_valid(3)
    assert info.valid_count == 2
    assert info.state is BlockState.OPEN


def test_standalone_blockinfo_still_constructs():
    """BlockInfo built outside any die (tests, policies) keeps working."""
    from repro.mapping import BlockInfo, BlockState

    info = BlockInfo(die=1, block=2, pages_per_block=8)
    assert info.state is BlockState.FREE
    info.note_write(0, 1.0)
    info.note_write(1, 2.0)
    info.invalidate(0)
    assert info.valid_count == 1
    assert info.invalid_count == 1
    assert info.valid_pages() == [1]
    assert info == BlockInfo(
        die=1,
        block=2,
        pages_per_block=8,
        state=BlockState.FREE,  # state transitions belong to the bookkeeping
        valid_mask=0b10,
        valid_count=1,
        written=2,
        last_write_us=2.0,
    )
