"""Unit tests for GC victim-selection policies."""

import pytest

from repro.mapping import (
    BlockInfo,
    choose_victim,
    choose_victim_cost_benefit,
    choose_victim_greedy,
)


def block(die, blk, pages=4, valid=0, written=None, last_write=0.0):
    """Build a BlockInfo with `valid` live pages out of `written` written."""
    written = pages if written is None else written
    info = BlockInfo(die=die, block=blk, pages_per_block=pages)
    for i in range(written):
        info.note_write(i, last_write)
    for i in range(written - valid):
        info.invalidate(i)
    return info


class TestGreedy:
    def test_picks_most_invalid(self):
        a = block(0, 0, valid=3)
        b = block(0, 1, valid=1)
        assert choose_victim_greedy([a, b]) is b

    def test_empty_candidates(self):
        assert choose_victim_greedy([]) is None

    def test_tie_breaks_by_address(self):
        a = block(1, 5, valid=1)
        b = block(0, 7, valid=1)
        assert choose_victim_greedy([a, b]) is b


class TestCostBenefit:
    def test_fully_invalid_block_always_wins(self):
        a = block(0, 0, valid=0, last_write=100.0)
        b = block(0, 1, valid=1, last_write=0.0)
        assert choose_victim_cost_benefit([a, b], now_us=200.0) is a

    def test_prefers_old_cold_blocks(self):
        # same validity, different age: older block wins
        young = block(0, 0, valid=2, last_write=90.0)
        old = block(0, 1, valid=2, last_write=10.0)
        assert choose_victim_cost_benefit([young, old], now_us=100.0) is old

    def test_empty_candidates(self):
        assert choose_victim_cost_benefit([], now_us=0.0) is None


class TestFacadeIsReExport:
    """The mapping-layer helpers are the policy lab's kernels, not forks.

    Pins the collapse of the legacy free functions into aliases: any
    future behavioural divergence between ``repro.mapping.policies`` and
    ``repro.policies`` must show up here as an identity break.
    """

    def test_selection_kernels_are_aliases(self):
        from repro import policies as lab
        from repro.mapping import policies as facade

        assert facade.choose_victim_greedy is lab.select_victim_greedy
        assert facade.choose_victim_cost_benefit is lab.select_victim_cost_benefit

    def test_policy_catalogue_matches_registry(self):
        from repro.mapping.policies import POLICIES
        from repro.policies import available_gc_policies

        assert sorted(POLICIES) == sorted(available_gc_policies())

    def test_dispatch_agrees_with_registry_policy(self):
        from repro.policies import resolve_gc_policy

        pool = [block(0, 0, valid=3), block(0, 1, valid=1), block(1, 2, valid=0)]
        for name in ("greedy", "cost_benefit"):
            direct = resolve_gc_policy(name).choose_victim(list(pool), now_us=500.0)
            assert choose_victim(name, list(pool), now_us=500.0) is direct


class TestDispatch:
    def test_dispatch_greedy(self):
        b = block(0, 0, valid=1)
        assert choose_victim("greedy", [b], now_us=0.0) is b

    def test_dispatch_cost_benefit(self):
        b = block(0, 0, valid=1)
        assert choose_victim("cost_benefit", [b], now_us=0.0) is b

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            choose_victim("lru", [], now_us=0.0)
