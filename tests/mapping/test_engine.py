"""Unit tests for the shared flash space engine (die scoping, migration)."""

import pytest

from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.mapping import (
    DieBookkeeping,
    FlashSpaceEngine,
    ManagementStats,
    SpaceFullError,
)


def make_device():
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=8,
        page_size=256,
        oob_size=16,
        max_pe_cycles=10_000,
    )
    return FlashDevice(geometry, timing=instant_timing())


def make_engine(device=None, dies=None, **kwargs):
    device = device or make_device()
    dies = list(range(device.geometry.dies)) if dies is None else dies
    books = {
        d: DieBookkeeping(d, device.geometry.blocks_per_die, device.geometry.pages_per_block)
        for d in dies
    }
    return FlashSpaceEngine(device, dies, books, ManagementStats(), **kwargs)


class TestScoping:
    def test_writes_stay_on_owned_dies(self):
        device = make_device()
        engine = make_engine(device, dies=[1, 3])
        for key in range(40):
            engine.write(key, b"x", at=0.0)
        assert device.stats.programs_per_die[0] == 0
        assert device.stats.programs_per_die[2] == 0
        assert device.stats.programs_per_die[1] > 0
        assert device.stats.programs_per_die[3] > 0

    def test_two_engines_share_device_without_interference(self):
        device = make_device()
        a = make_engine(device, dies=[0, 1])
        b = make_engine(device, dies=[2, 3])
        a.write(1, b"a", at=0.0)
        b.write(1, b"b", at=0.0)  # same key, different engine: independent
        assert a.read(1, at=0.0)[0] == b"a"
        assert b.read(1, at=0.0)[0] == b"b"
        a.check_consistency()
        b.check_consistency()

    def test_requires_at_least_one_die(self):
        device = make_device()
        with pytest.raises(ValueError):
            make_engine(device, dies=[])

    def test_requires_books_for_every_die(self):
        device = make_device()
        with pytest.raises(ValueError):
            FlashSpaceEngine(device, [0, 1], {0: DieBookkeeping(0, 16, 8)}, ManagementStats())


class TestGCScoping:
    def test_gc_only_touches_owned_dies(self):
        device = make_device()
        engine = make_engine(device, dies=[0])
        for i in range(device.geometry.pages_per_die * 3):
            engine.write(i % 8, b"x", at=0.0)
        assert engine.stats.gc_erases > 0
        assert device.stats.erases_per_die[1] == 0
        assert device.stats.erases_per_die[2] == 0

    def test_space_full_when_region_overcommitted(self):
        device = make_device()
        engine = make_engine(device, dies=[0])
        with pytest.raises(SpaceFullError):
            for key in range(device.geometry.pages_per_die):
                engine.write(key, b"x", at=0.0)

    def test_safe_capacity_accounts_reserve(self):
        device = make_device()
        engine = make_engine(device, dies=[0, 1])
        per_die = device.geometry.pages_per_die
        reserve = engine.reserve_blocks_per_die * device.geometry.pages_per_block
        assert engine.safe_capacity_pages() == 2 * (per_die - reserve)

    def test_data_survives_heavy_gc(self):
        import random

        rng = random.Random(5)
        device = make_device()
        engine = make_engine(device, dies=[0, 1])
        capacity = engine.safe_capacity_pages()
        payloads = {}
        for __ in range(capacity * 6):
            key = rng.randrange(int(capacity * 0.8))
            payload = bytes([rng.randrange(256)]) * 4
            engine.write(key, payload, at=0.0)
            payloads[key] = payload
        for key, payload in payloads.items():
            assert engine.read(key, at=0.0)[0] == payload
        engine.check_consistency()


class TestDieMembership:
    def test_add_die_expands_capacity(self):
        device = make_device()
        engine = make_engine(device, dies=[0])
        before = engine.safe_capacity_pages()
        engine.add_die(1, DieBookkeeping(1, 16, 8))
        assert engine.safe_capacity_pages() == 2 * before

    def test_add_duplicate_die_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.add_die(0, DieBookkeeping(0, 16, 8))

    def test_evacuate_die_preserves_data(self):
        device = make_device()
        engine = make_engine(device, dies=[0, 1])
        payloads = {key: bytes([key]) * 4 for key in range(30)}
        for key, payload in payloads.items():
            engine.write(key, payload, at=0.0)
        books, __ = engine.evacuate_die(1, at=0.0)
        assert engine.dies == [0]
        for key, payload in payloads.items():
            assert engine.read(key, at=0.0)[0] == payload
        engine.check_consistency()
        # the released die is fully free again
        assert books.free_count == device.geometry.blocks_per_die

    def test_evacuated_die_can_join_other_engine(self):
        device = make_device()
        a = make_engine(device, dies=[0, 1])
        b = make_engine(device, dies=[2])
        for key in range(20):
            a.write(key, b"a", at=0.0)
        books, __ = a.evacuate_die(1, at=0.0)
        b.add_die(1, books)
        for key in range(40):
            b.write(key, b"b", at=0.0)
        assert device.stats.programs_per_die[1] > 0
        a.check_consistency()
        b.check_consistency()

    def test_cannot_evacuate_last_die(self):
        engine = make_engine(dies=[0])
        with pytest.raises(ValueError):
            engine.evacuate_die(0, at=0.0)

    def test_cannot_evacuate_foreign_die(self):
        engine = make_engine(dies=[0, 1])
        with pytest.raises(ValueError):
            engine.evacuate_die(3, at=0.0)
