"""Tests for read-disturb tracking and refresh."""

import pytest

from repro.flash import FlashDevice, FlashGeometry, PhysicalPageAddress, instant_timing
from repro.mapping import DieBookkeeping, FlashSpaceEngine, ManagementStats


def make_engine(threshold):
    geometry = FlashGeometry(
        channels=1,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=12,
        pages_per_block=8,
        page_size=128,
        oob_size=16,
        max_pe_cycles=1_000_000,
    )
    device = FlashDevice(geometry, timing=instant_timing())
    dies = [0, 1]
    books = {d: DieBookkeeping(d, 12, 8) for d in dies}
    return FlashSpaceEngine(
        device, dies, books, ManagementStats(), read_disturb_threshold=threshold
    )


class TestBlockCounter:
    def test_reads_counted_and_reset_by_erase(self):
        from repro.flash import small_geometry

        device = FlashDevice(small_geometry(), timing=instant_timing())
        device.program_page(PhysicalPageAddress(0, 0, 0), b"x")
        block = device.dies[0].blocks[0]
        for __ in range(3):
            device.read_page(PhysicalPageAddress(0, 0, 0))
        assert block.reads_since_erase == 3
        from repro.flash import PhysicalBlockAddress

        device.erase_block(PhysicalBlockAddress(0, 0))
        assert block.reads_since_erase == 0


class TestRefresh:
    def fill_block(self, engine, keys):
        """Write keys until at least one FULL block exists; return one."""
        at = 0.0
        for key in keys:
            at = engine.write(key, bytes([key % 256]), at)
        from repro.mapping.blockinfo import BlockState

        for die in engine.dies:
            for info in engine.books[die].blocks:
                if info.state is BlockState.FULL and info.valid_count > 0:
                    return info, at
        raise AssertionError("no full block produced")

    def test_hammered_block_gets_refreshed(self):
        engine = make_engine(threshold=50)
        info, at = self.fill_block(engine, list(range(40)))
        victim_keys = [
            engine._rmap[PhysicalPageAddress(info.die, info.block, p).to_int(engine.geometry)]
            for p in info.valid_pages()
        ]
        # hammer one key in the full block past the threshold
        target = victim_keys[0]
        for __ in range(60):
            data, at = engine.read(target, at)
        assert engine.stats.wl_erases >= 1
        assert engine.stats.wl_moves > 0
        # all data still readable afterwards
        for key in range(40):
            assert engine.read(key, at)[0] == bytes([key % 256])
        engine.check_consistency()

    def test_no_refresh_below_threshold(self):
        engine = make_engine(threshold=10_000)
        info, at = self.fill_block(engine, list(range(40)))
        for key in range(40):
            for __ in range(5):
                __, at = engine.read(key, at)
        assert engine.stats.wl_erases == 0

    def test_disabled_by_default(self):
        engine = make_engine(threshold=None)
        info, at = self.fill_block(engine, list(range(40)))
        target = next(iter(engine.keys()))
        for __ in range(200):
            __, at = engine.read(target, at)
        assert engine.stats.wl_erases == 0
