"""Unit tests for shared block bookkeeping."""

import pytest

from repro.mapping import BlockInfo, BlockState, BookkeepingError, DieBookkeeping


def make_info(pages=4):
    return BlockInfo(die=0, block=0, pages_per_block=pages)


class TestBlockInfo:
    def test_note_write_tracks_validity(self):
        info = make_info()
        info.note_write(0, now_us=10.0)
        info.note_write(1, now_us=20.0)
        assert info.valid_count == 2
        assert info.written == 2
        assert info.last_write_us == 20.0

    def test_out_of_order_write_rejected(self):
        info = make_info()
        with pytest.raises(BookkeepingError):
            info.note_write(2, now_us=0.0)

    def test_full_block_transitions_state(self):
        info = make_info(pages=2)
        info.note_write(0, 0.0)
        assert info.state is BlockState.FREE  # state managed by pool; FULL set on fill
        info.note_write(1, 0.0)
        assert info.state is BlockState.FULL

    def test_invalidate(self):
        info = make_info()
        info.note_write(0, 0.0)
        info.invalidate(0)
        assert info.valid_count == 0
        assert info.invalid_count == 1

    def test_double_invalidate_rejected(self):
        info = make_info()
        info.note_write(0, 0.0)
        info.invalidate(0)
        with pytest.raises(BookkeepingError):
            info.invalidate(0)

    def test_valid_pages_listing(self):
        info = make_info()
        for i in range(3):
            info.note_write(i, 0.0)
        info.invalidate(1)
        assert info.valid_pages() == [0, 2]

    def test_reset_after_erase(self):
        info = make_info(pages=2)
        info.note_write(0, 0.0)
        info.note_write(1, 0.0)
        info.reset_after_erase()
        assert info.state is BlockState.FREE
        assert info.written == 0
        assert info.valid_count == 0


class TestDieBookkeeping:
    def test_take_free_block_marks_open(self):
        die = DieBookkeeping(die=0, blocks_per_die=4, pages_per_block=4)
        info = die.take_free_block()
        assert info.state is BlockState.OPEN
        assert die.free_count == 3

    def test_take_free_blocks_exhausts(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=4)
        die.take_free_block()
        die.take_free_block()
        with pytest.raises(BookkeepingError):
            die.take_free_block()

    def test_return_erased_block_recycles(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=2)
        info = die.take_free_block()
        info.note_write(0, 0.0)
        info.note_write(1, 0.0)
        die.return_erased_block(info.block)
        assert die.free_count == 2
        assert info.state is BlockState.FREE

    def test_bad_block_not_recycled(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=2)
        die.mark_bad(0)
        assert die.free_count == 1
        die.return_erased_block(0)
        assert die.free_count == 1

    def test_gc_candidates_only_full_with_invalid(self):
        die = DieBookkeeping(die=0, blocks_per_die=3, pages_per_block=2)
        a = die.take_free_block()
        a.note_write(0, 0.0)
        a.note_write(1, 0.0)  # full, all valid -> not a candidate
        b = die.take_free_block()
        b.note_write(0, 0.0)
        b.note_write(1, 0.0)
        b.invalidate(0)  # full with one invalid -> candidate
        assert die.gc_candidates() == [b]

    def test_total_valid_pages(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=2)
        info = die.take_free_block()
        info.note_write(0, 0.0)
        assert die.total_valid_pages() == 1
