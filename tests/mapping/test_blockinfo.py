"""Unit tests for shared block bookkeeping."""

import pytest

from repro.mapping import BlockInfo, BlockState, BookkeepingError, DieBookkeeping


def make_info(pages=4):
    return BlockInfo(die=0, block=0, pages_per_block=pages)


class TestBlockInfo:
    def test_note_write_tracks_validity(self):
        info = make_info()
        info.note_write(0, now_us=10.0)
        info.note_write(1, now_us=20.0)
        assert info.valid_count == 2
        assert info.written == 2
        assert info.last_write_us == 20.0

    def test_out_of_order_write_rejected(self):
        info = make_info()
        with pytest.raises(BookkeepingError):
            info.note_write(2, now_us=0.0)

    def test_full_block_transitions_state(self):
        info = make_info(pages=2)
        info.note_write(0, 0.0)
        assert info.state is BlockState.FREE  # state managed by pool; FULL set on fill
        info.note_write(1, 0.0)
        assert info.state is BlockState.FULL

    def test_invalidate(self):
        info = make_info()
        info.note_write(0, 0.0)
        info.invalidate(0)
        assert info.valid_count == 0
        assert info.invalid_count == 1

    def test_double_invalidate_rejected(self):
        info = make_info()
        info.note_write(0, 0.0)
        info.invalidate(0)
        with pytest.raises(BookkeepingError):
            info.invalidate(0)

    def test_valid_pages_listing(self):
        info = make_info()
        for i in range(3):
            info.note_write(i, 0.0)
        info.invalidate(1)
        assert info.valid_pages() == [0, 2]

    def test_reset_after_erase(self):
        info = make_info(pages=2)
        info.note_write(0, 0.0)
        info.note_write(1, 0.0)
        info.reset_after_erase()
        assert info.state is BlockState.FREE
        assert info.written == 0
        assert info.valid_count == 0


class TestDieBookkeeping:
    def test_take_free_block_marks_open(self):
        die = DieBookkeeping(die=0, blocks_per_die=4, pages_per_block=4)
        info = die.take_free_block()
        assert info.state is BlockState.OPEN
        assert die.free_count == 3

    def test_take_free_blocks_exhausts(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=4)
        die.take_free_block()
        die.take_free_block()
        with pytest.raises(BookkeepingError):
            die.take_free_block()

    def test_return_erased_block_recycles(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=2)
        info = die.take_free_block()
        info.note_write(0, 0.0)
        info.note_write(1, 0.0)
        die.return_erased_block(info.block)
        assert die.free_count == 2
        assert info.state is BlockState.FREE

    def test_bad_block_not_recycled(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=2)
        die.mark_bad(0)
        assert die.free_count == 1
        die.return_erased_block(0)
        assert die.free_count == 1

    def test_gc_candidates_only_full_with_invalid(self):
        die = DieBookkeeping(die=0, blocks_per_die=3, pages_per_block=2)
        a = die.take_free_block()
        a.note_write(0, 0.0)
        a.note_write(1, 0.0)  # full, all valid -> not a candidate
        b = die.take_free_block()
        b.note_write(0, 0.0)
        b.note_write(1, 0.0)
        b.invalidate(0)  # full with one invalid -> candidate
        assert die.gc_candidates() == [b]

    def test_total_valid_pages(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=2)
        info = die.take_free_block()
        info.note_write(0, 0.0)
        assert die.total_valid_pages() == 1


def fill_block(die, pages=2, now=0.0):
    info = die.take_free_block()
    for p in range(pages):
        info.note_write(p, now)
    return info


class TestIncrementalCandidates:
    """The maintained GC candidate set tracks state transitions exactly."""

    def test_validity_is_a_bitmask(self):
        info = BlockInfo(die=0, block=0, pages_per_block=4)
        info.note_write(0, 0.0)
        info.note_write(1, 0.0)
        info.invalidate(0)
        assert info.valid_mask == 0b10
        assert info.valid_count == info.valid_mask.bit_count() == 1
        assert not info.is_valid(0)
        assert info.is_valid(1)

    def test_has_reclaimable_lifecycle(self):
        die = DieBookkeeping(die=0, blocks_per_die=3, pages_per_block=2)
        assert not die.has_reclaimable
        info = fill_block(die)
        assert not die.has_reclaimable  # full but all valid
        info.invalidate(0)
        assert die.has_reclaimable
        die.return_erased_block(info.block)
        assert not die.has_reclaimable

    def test_candidate_enters_on_fill_with_prior_invalid(self):
        # pages can die while the block is still an open frontier; the
        # block must become a candidate the moment it fills
        die = DieBookkeeping(die=0, blocks_per_die=3, pages_per_block=2)
        info = die.take_free_block()
        info.note_write(0, 0.0)
        info.invalidate(0)
        assert not die.has_reclaimable
        info.note_write(1, 0.0)
        assert die.gc_candidates() == [info]

    def test_seal_makes_partial_block_a_candidate(self):
        die = DieBookkeeping(die=0, blocks_per_die=3, pages_per_block=4)
        info = die.take_free_block()
        info.note_write(0, 0.0)
        info.seal()
        assert info.state is BlockState.FULL
        assert info.invalid_count == 3
        assert die.gc_candidates() == [info]

    def test_greedy_victim_max_invalid_lowest_block(self):
        die = DieBookkeeping(die=0, blocks_per_die=4, pages_per_block=4)
        a = fill_block(die, pages=4)
        b = fill_block(die, pages=4)
        c = fill_block(die, pages=4)
        a.invalidate(0)
        for p in (0, 1):
            b.invalidate(p)
            c.invalidate(p)
        # b and c tie on invalid count; the lower block index wins
        assert die.greedy_victim() is b
        b.invalidate(2)
        assert die.greedy_victim() is b
        die.return_erased_block(b.block)
        assert die.greedy_victim() is c

    def test_mark_bad_removes_candidate(self):
        die = DieBookkeeping(die=0, blocks_per_die=3, pages_per_block=2)
        info = fill_block(die)
        info.invalidate(0)
        assert die.has_reclaimable
        die.mark_bad(info.block)
        assert not die.has_reclaimable
        die.check_invariants()

    def test_reset_all_clears_candidates(self):
        die = DieBookkeeping(die=0, blocks_per_die=3, pages_per_block=2)
        info = fill_block(die)
        info.invalidate(0)
        die.reset_all()
        assert not die.has_reclaimable
        assert die.free_count == 3
        die.check_invariants()


class TestFreePoolOrder:
    """The dict-backed free pool keeps the seed's exact LIFO semantics."""

    def test_pops_ascend_then_lifo_recycle(self):
        die = DieBookkeeping(die=0, blocks_per_die=4, pages_per_block=1)
        assert die.take_free_block().block == 0
        assert die.take_free_block().block == 1
        die.blocks[0].note_write(0, 0.0)
        die.return_erased_block(0)
        # the most recently returned block is handed out first
        assert die.take_free_block().block == 0

    def test_take_specific_block_preserves_order(self):
        die = DieBookkeeping(die=0, blocks_per_die=4, pages_per_block=1)
        die.take_block(1)
        assert [b.block for b in die.free_blocks()] == [3, 2, 0]
        assert die.take_free_block().block == 0

    def test_take_block_requires_free(self):
        die = DieBookkeeping(die=0, blocks_per_die=2, pages_per_block=1)
        die.take_block(1)
        with pytest.raises(BookkeepingError):
            die.take_block(1)
