"""Tests for endurance exhaustion: worn-out blocks retire gracefully."""

import random

import pytest

from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.mapping import (
    BookkeepingError,
    DieBookkeeping,
    FlashSpaceEngine,
    ManagementStats,
    SpaceFullError,
)
from repro.mapping.blockinfo import BlockState


def churn_until_eol(engine, keys, payloads, rounds, seed):
    """Update random keys until `rounds` writes or device end-of-life."""
    rng = random.Random(seed)
    for i in range(rounds):
        key = rng.choice(keys)
        payload = bytes([i % 256])
        try:
            engine.write(key, payload, at=0.0)
        except (SpaceFullError, BookkeepingError):
            return True  # the device ran out of good blocks: end of life
        payloads[key] = payload
    return False


def make_engine(max_pe_cycles=12, dies=2):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=12,
        pages_per_block=8,
        page_size=128,
        oob_size=16,
        max_pe_cycles=max_pe_cycles,
    )
    device = FlashDevice(geometry, timing=instant_timing())
    die_list = list(range(dies))
    books = {
        d: DieBookkeeping(d, geometry.blocks_per_die, geometry.pages_per_block)
        for d in die_list
    }
    return FlashSpaceEngine(device, die_list, books, ManagementStats())


class TestWearOut:
    def test_worn_blocks_retire_and_data_survives(self):
        engine = make_engine(max_pe_cycles=10)
        rng = random.Random(1)
        capacity = engine.safe_capacity_pages()
        keys = list(range(capacity // 3))
        payloads = {}
        # churn until some blocks exceed endurance
        for i in range(capacity * 25):
            key = rng.choice(keys)
            payload = bytes([i % 256])
            engine.write(key, payload, at=0.0)
            payloads[key] = payload
            if engine.device.max_erase_count() >= 10:
                break
        bad_blocks = sum(
            1
            for books in engine.books.values()
            for info in books.blocks
            if info.state is BlockState.BAD
        )
        assert bad_blocks > 0, "no block wore out; raise churn"
        for key, payload in payloads.items():
            assert engine.read(key, at=0.0)[0] == payload
        engine.check_consistency()

    def test_retired_blocks_never_reused(self):
        engine = make_engine(max_pe_cycles=6)
        capacity = engine.safe_capacity_pages()
        keys = list(range(capacity // 4))
        churn_until_eol(engine, keys, {}, capacity * 30, seed=2)
        # every bad device block is also bad in the bookkeeping
        for die_index in engine.dies:
            device_die = engine.device.dies[die_index]
            books = engine.books[die_index]
            for b, blk in enumerate(device_die.blocks):
                if blk.is_bad:
                    assert books.blocks[b].state is BlockState.BAD

    def test_capacity_shrinks_as_blocks_retire(self):
        engine = make_engine(max_pe_cycles=6)
        before = engine.safe_capacity_pages()
        keys = list(range(before // 4))
        churn_until_eol(engine, keys, {}, before * 30, seed=3)
        assert engine.safe_capacity_pages() < before
