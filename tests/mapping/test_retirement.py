"""Block retirement paths: GC, read-disturb refresh, WL and factory bad blocks.

Coverage for the pre-existing ``_retire_or_recycle`` path under every
erase site, plus the wear-levelling fallback's traffic accounting (the
stats-drift fix): the copyback-constrained WL move must count its
read+program pairs exactly like the GC fallback does.
"""

import random

from repro.core import NoFTLStore, RegionConfig
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.mapping import DieBookkeeping, FlashSpaceEngine, ManagementStats
from repro.mapping.blockinfo import BlockState


def make_engine(
    dies=1,
    planes_per_die=1,
    blocks_per_plane=12,
    pages_per_block=8,
    max_pe_cycles=1_000_000,
    strict_plane_copyback=False,
    **engine_kwargs,
):
    geometry = FlashGeometry(
        channels=1,
        chips_per_channel=dies,
        dies_per_chip=1,
        planes_per_die=planes_per_die,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=pages_per_block,
        page_size=128,
        oob_size=16,
        max_pe_cycles=max_pe_cycles,
    )
    device = FlashDevice(
        geometry, timing=instant_timing(), strict_plane_copyback=strict_plane_copyback
    )
    die_list = list(range(dies))
    books = {
        d: DieBookkeeping(d, geometry.blocks_per_die, geometry.pages_per_block)
        for d in die_list
    }
    return FlashSpaceEngine(device, die_list, books, ManagementStats(), **engine_kwargs)


def bad_blocks(engine):
    return [
        (d, info.block)
        for d in engine.dies
        for info in engine.books[d].blocks
        if info.state is BlockState.BAD
    ]


def assert_frontiers_skip_bad(engine):
    """No frontier — user, GC or group — may sit on a retired block."""
    for die, info in engine._user_frontier.items():
        if info is not None:
            assert not engine.device.dies[die].blocks[info.block].is_bad
    for die, info in engine._gc_frontier.items():
        if info is not None:
            assert not engine.device.dies[die].blocks[info.block].is_bad
    for stripe in engine._group_frontiers.values():
        for info in stripe:
            if info is not None:
                assert not engine.device.dies[info.die].blocks[info.block].is_bad


class TestRetireDuringGC:
    def test_worn_block_retires_at_gc_erase_and_frontiers_skip_it(self):
        engine = make_engine(max_pe_cycles=1_000_000)
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="wearout", every=1, count=2),))
        )
        engine.device.attach_fault_injector(injector)
        capacity = engine.safe_capacity_pages()
        keys = list(range(capacity // 2))
        payloads = {}
        t = 0.0
        rng = random.Random(5)
        i = 0
        # the first two GC erases hit injected wear-out; keep churning well
        # past them so frontiers must route around the retired blocks
        while injector.stats.retired_wearout_blocks < 2 or i < capacity * 6:
            key = rng.choice(keys)
            payloads[key] = bytes([i % 256])
            t = engine.write(key, payloads[key], at=t)
            i += 1
            assert i < capacity * 40, "GC never retired the worn blocks"
        retired = bad_blocks(engine)
        assert len(retired) == 2
        for die, block in retired:
            assert engine.device.dies[die].blocks[block].is_bad
        assert_frontiers_skip_bad(engine)
        for key, payload in payloads.items():
            assert engine.read(key, at=t)[0] == payload
        engine.check_consistency()


class TestRetireDuringReadDisturbRefresh:
    def test_worn_block_retires_at_refresh_erase(self):
        threshold = 10
        engine = make_engine(read_disturb_threshold=threshold)
        per_block = engine.geometry.pages_per_block
        payloads = {}
        t = 0.0
        for key in range(per_block):  # exactly fills block 0 -> FULL
            payloads[key] = bytes([key])
            t = engine.write(key, payloads[key], at=t)
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="wearout", every=1, count=1),))
        )
        engine.device.attach_fault_injector(injector)
        # hammer one page until the patrol refreshes the block; its erase
        # trips the injected wear-out and _retire_or_recycle retires it
        for __ in range(threshold + 2):
            data, t = engine.read(0, at=t)
            assert data == payloads[0]
        assert engine.stats.wl_erases == 1  # the refresh ran
        assert injector.stats.retired_wearout_blocks == 1
        assert bad_blocks(engine) == [(0, 0)]
        assert_frontiers_skip_bad(engine)
        for key, payload in payloads.items():
            assert engine.read(key, at=t)[0] == payload
        engine.check_consistency()


class TestFactoryBadBlocks:
    def test_region_allocation_succeeds_on_factory_marked_device(self):
        geometry = FlashGeometry(
            channels=2,
            chips_per_channel=2,
            dies_per_chip=1,
            planes_per_die=1,
            blocks_per_plane=16,
            pages_per_block=8,
            page_size=128,
            oob_size=16,
        )
        pristine = NoFTLStore.create(geometry, timing=instant_timing())
        store = NoFTLStore.create(
            geometry, timing=instant_timing(), initial_bad_block_rate=0.15, seed=11
        )
        factory_bad = sum(
            1 for die in store.device.dies for blk in die.blocks if blk.is_bad
        )
        assert factory_bad > 0, "seed 11 produced no factory bad blocks; adjust"
        region = store.create_region(RegionConfig(name="rg"), num_dies=4)
        baseline = pristine.create_region(RegionConfig(name="rg"), num_dies=4)
        assert region.capacity_pages() < baseline.capacity_pages()
        pages = region.allocate(region.capacity_pages() // 2)
        t = 0.0
        for i, rpn in enumerate(pages):
            t = region.write(rpn, bytes([i % 256]), t)
        for i, rpn in enumerate(pages):
            assert region.read(rpn, t)[0] == bytes([i % 256])
        # no frontier ever landed on a factory-bad block
        assert_frontiers_skip_bad(region.engine)
        store.check_consistency()


class TestWearLevelFallbackAccounting:
    def test_cross_plane_wl_move_counts_reads_and_programs(self):
        # strict-plane copyback forces the WL move into its read+program
        # fallback; the fix pins that it counts gc_reads/gc_programs just
        # like the GC fallback (previously it counted neither)
        engine = make_engine(
            planes_per_die=2,
            blocks_per_plane=8,
            pages_per_block=4,
            strict_plane_copyback=True,
            wear_level_threshold=2,
        )
        per_block = engine.geometry.pages_per_block
        payloads = {}
        t = 0.0
        for key in range(per_block):  # block 0 (plane 0) becomes FULL
            payloads[key] = bytes([key])
            t = engine.write(key, payloads[key], at=t)
        # age a free plane-1 block so it becomes the WL target and the
        # spread over the cold block 0 exceeds the threshold
        from repro.flash.address import PhysicalBlockAddress

        # planes interleave (plane = block % planes_per_die): block 0 is
        # plane 0, so any odd free block is a cross-plane WL target
        target_block = 9
        assert engine.geometry.plane_of_block(target_block) != engine.geometry.plane_of_block(0)
        for __ in range(5):
            engine.device.erase_block(PhysicalBlockAddress(0, target_block), at=t)

        assert engine.stats.gc_reads == 0
        assert engine.stats.gc_programs == 0
        t = engine._wear_level_die(0, t)

        assert engine.stats.wl_moves == per_block
        assert engine.stats.wl_erases == 1
        assert engine.stats.gc_copybacks == 0  # every copyback was refused
        assert engine.stats.gc_reads == per_block  # the drift fix
        assert engine.stats.gc_programs == per_block
        for key, payload in payloads.items():
            assert engine.read(key, at=t)[0] == payload
        engine.check_consistency()
