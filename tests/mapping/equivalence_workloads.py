"""Fixed-seed workloads whose engine statistics are pinned to golden values.

The hot-path optimisation work (incremental GC bookkeeping, bitmask
validity, O(1) free pools) must be *observationally pure*: victim choice,
erase/copyback counts and the final logical-to-physical mapping have to be
bit-identical to the unoptimised implementation.  These helpers run small
but feature-dense deterministic workloads — skewed overwrites, placement
groups, atomic batches, trims, GC under both policies, static wear
levelling, factory bad blocks — and reduce the end state to a snapshot
dict that golden tests compare field by field.

The golden values in ``test_engine_equivalence.py`` and
``tests/integration/test_determinism.py`` were captured from the seed
(pre-optimisation) implementation; any future change to these numbers
means simulated behaviour changed, which a pure performance PR must not do.
"""

from __future__ import annotations

import hashlib
import random

from repro.flash import FlashDevice, FlashGeometry
from repro.mapping import DieBookkeeping, FlashSpaceEngine, ManagementStats


def small_geometry() -> FlashGeometry:
    """A 4-die device small enough that GC churns constantly."""
    return FlashGeometry(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=16,
        page_size=128,
        oob_size=16,
        max_pe_cycles=100_000,
    )


def build_engine(gc_policy: str, seed: int) -> FlashSpaceEngine:
    geometry = small_geometry()
    # real (default) timing so cost-benefit GC sees distinct block ages and
    # the resource timelines accumulate/prune reservations like a long run
    device = FlashDevice(geometry, initial_bad_block_rate=0.03, seed=seed)
    dies = list(range(geometry.dies))
    books = {
        d: DieBookkeeping(d, geometry.blocks_per_die, geometry.pages_per_block)
        for d in dies
    }
    for d in dies:
        books[d].adopt_factory_bad_blocks(device.dies[d])
    return FlashSpaceEngine(
        device,
        dies=dies,
        books=books,
        stats=ManagementStats(),
        gc_policy=gc_policy,
        wear_level_threshold=4,
        wl_check_interval_erases=8,
    )


def run_engine_workload(
    gc_policy: str, seed: int, ops: int = 6000, slow_path: bool = False
) -> dict:
    """Skewed write/trim/atomic workload straight against one engine.

    ``slow_path=True`` attaches an event bus to the device, which disables
    the engine's packed array-core fast paths (they are only legal when no
    observer needs per-command events) — the same workload then runs
    through the full command implementations, letting golden tests prove
    both paths simulate identically.
    """
    engine = build_engine(gc_policy, seed)
    if slow_path:
        engine.device.attach_event_bus()
    rng = random.Random(seed)
    # keep the live set well inside safe capacity so GC has slack
    keys = max(64, int(engine.safe_capacity_pages() * 0.72))
    hot = max(8, keys // 10)
    at = 0.0
    for i in range(ops):
        roll = rng.random()
        # 90% of traffic hammers the hot 10% of the key space
        key = rng.randrange(hot) if rng.random() < 0.9 else rng.randrange(keys)
        if roll < 0.08:
            engine.invalidate(key)
        elif roll < 0.12:
            batch_keys = rng.sample(range(keys), rng.randrange(2, 5))
            entries = [(k, bytes([k % 256, i % 256])) for k in batch_keys]
            at = engine.write_atomic(entries, at, group=rng.choice([None, 1]))
        else:
            group = rng.choice([None, None, 1, 2])
            at = engine.write(key, bytes([key % 256, i % 256]), at, group=group)
    engine.check_consistency()
    return engine_snapshot(engine, at)


def engine_snapshot(engine: FlashSpaceEngine, at: float) -> dict:
    """Reduce everything observable about an engine run to plain values."""
    stats = engine.stats
    digest = hashlib.sha256()
    for key in engine.keys():
        digest.update(f"{key}:{engine._map[key]};".encode())
    return {
        "gc_erases": stats.gc_erases,
        "gc_copybacks": stats.gc_copybacks,
        "gc_reads": stats.gc_reads,
        "gc_programs": stats.gc_programs,
        "gc_victim_valid_pages": stats.gc_victim_valid_pages,
        "wl_moves": stats.wl_moves,
        "wl_erases": stats.wl_erases,
        "erase_counts_per_die": [
            sum(counts) for counts in engine.device.erase_counts()
        ],
        "free_blocks_per_die": [engine.books[d].free_count for d in engine.dies],
        "live_pages": engine.live_pages(),
        "final_at_us": round(at, 6),
        "mapping_sha256": digest.hexdigest(),
    }
