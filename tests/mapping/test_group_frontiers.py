"""Unit tests for placement-group (object-aware) write frontiers."""

import random

import pytest

from repro.flash import FlashDevice, FlashGeometry, PhysicalPageAddress, instant_timing
from repro.mapping import DieBookkeeping, FlashSpaceEngine, ManagementStats


def make_engine(dies=4, blocks=16, pages=8):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=blocks,
        pages_per_block=pages,
        page_size=256,
        oob_size=16,
        max_pe_cycles=100_000,
    )
    device = FlashDevice(geometry, timing=instant_timing())
    die_list = list(range(min(dies, geometry.dies)))
    books = {d: DieBookkeeping(d, geometry.blocks_per_die, geometry.pages_per_block) for d in die_list}
    return FlashSpaceEngine(device, die_list, books, ManagementStats())


def blocks_of(engine, keys):
    """Set of (die, block) pairs holding the given keys."""
    result = set()
    for key in keys:
        ppa = PhysicalPageAddress.from_int(engine._map[key], engine.geometry)
        result.add((ppa.die, ppa.block))
    return result


class TestGroupSeparation:
    def test_groups_never_share_blocks(self):
        engine = make_engine()
        a_keys = list(range(0, 40))
        b_keys = list(range(100, 140))
        at = 0.0
        for ka, kb in zip(a_keys, b_keys):
            at = engine.write(ka, b"a", at, group=1)
            at = engine.write(kb, b"b", at, group=2)
        assert not blocks_of(engine, a_keys) & blocks_of(engine, b_keys)
        engine.check_consistency()

    def test_group_blocks_stripe_across_dies(self):
        engine = make_engine()
        keys = list(range(200))
        at = 0.0
        for k in keys:
            at = engine.write(k, b"a", at, group=1)
        dies_used = {die for die, __ in blocks_of(engine, keys)}
        assert len(dies_used) == len(engine.dies)

    def test_grouped_and_ungrouped_writes_coexist(self):
        engine = make_engine()
        at = 0.0
        for k in range(20):
            at = engine.write(k, b"g", at, group=7)
        for k in range(100, 120):
            at = engine.write(k, b"u", at)
        assert not blocks_of(engine, range(20)) & blocks_of(engine, range(100, 120))
        for k in range(20):
            assert engine.read(k, 0.0)[0] == b"g"

    def test_data_survives_gc_with_groups(self):
        engine = make_engine()
        rng = random.Random(9)
        payloads = {}
        capacity = engine.safe_capacity_pages()
        at = 0.0
        for i in range(capacity * 5):
            group = rng.choice([1, 2, 3])
            key = group * 10_000 + rng.randrange(capacity // 6)
            payload = bytes([rng.randrange(256)])
            at = engine.write(key, payload, at, group=group)
            payloads[key] = payload
        assert engine.stats.gc_erases > 0
        for key, payload in payloads.items():
            assert engine.read(key, 0.0)[0] == payload
        engine.check_consistency()

    def test_hot_cold_groups_reduce_copybacks(self):
        """The headline mechanism: grouped placement cuts GC copyback work."""

        def churn(grouped):
            engine = make_engine(blocks=8)
            rng = random.Random(4)
            capacity = engine.safe_capacity_pages()
            cold = list(range(int(capacity * 0.5)))
            hot = list(range(10_000, 10_000 + max(1, capacity // 16)))
            at = 0.0
            for k in cold:
                at = engine.write(k, b"c", at, group=1 if grouped else None)
            for k in hot:
                at = engine.write(k, b"h", at, group=2 if grouped else None)
            for __ in range(capacity * 4):
                if rng.random() < 0.95:
                    k, g = rng.choice(hot), 2
                else:
                    k, g = rng.choice(cold), 1
                at = engine.write(k, b"x", at, group=g if grouped else None)
            return engine.stats.gc_copybacks

        assert churn(grouped=True) < churn(grouped=False)

    def test_evacuate_die_resets_group_frontiers(self):
        engine = make_engine()
        at = 0.0
        for k in range(10):
            at = engine.write(k, b"a", at, group=1)
        stripe = engine._group_frontiers[1]
        victim = next(f.die for f in stripe if f is not None)
        engine.evacuate_die(victim, at)
        for k in range(10, 30):
            at = engine.write(k, b"a", at, group=1)
        for k in range(30):
            assert engine.read(k, 0.0)[0] == b"a"
        engine.check_consistency()
