"""Golden equivalence: incremental bookkeeping is observationally pure.

The O(1) hot-path bookkeeping (bitmask validity, maintained GC candidate
buckets, dict-backed free pools, inline address packing) must not change a
single simulated outcome.  These goldens — GC erase/copyback counts, victim
valid-page totals, per-die wear, final free pools and a digest of the whole
logical-to-physical mapping — were captured from the seed (pre-optimisation)
implementation on fixed-seed skewed workloads under both GC policies.

If one of these numbers moves, the optimisation stopped being a pure
optimisation: victim selection, GC scheduling or mapping behaviour changed.
Fix the code, don't re-pin the golden.
"""

import pytest

from tests.mapping.equivalence_workloads import run_engine_workload

GOLDEN = {
    ("greedy", 3): {
        "gc_erases": 306,
        "gc_copybacks": 652,
        "gc_reads": 0,
        "gc_programs": 0,
        "gc_victim_valid_pages": 652,
        "wl_moves": 42,
        "wl_erases": 10,
        "erase_counts_per_die": [79, 80, 77, 80],
        "free_blocks_per_die": [3, 3, 3, 3],
        "live_pages": 779,
        "final_at_us": 4455040.0,
        "mapping_sha256": "71a48381a0b9cd8e2d164170e247ced979ac6b34ec17c93a021e70122d4770d1",
    },
    ("greedy", 11): {
        "gc_erases": 305,
        "gc_copybacks": 632,
        "gc_reads": 0,
        "gc_programs": 0,
        "gc_victim_valid_pages": 632,
        "wl_moves": 31,
        "wl_erases": 7,
        "erase_counts_per_die": [76, 79, 80, 77],
        "free_blocks_per_die": [3, 3, 2, 2],
        "live_pages": 802,
        "final_at_us": 4424810.0,
        "mapping_sha256": "22ab60b4dfaca4c738d33733a5a624fd4f2a697fe81a5293d849182afe2aa724",
    },
    ("cost_benefit", 3): {
        "gc_erases": 304,
        "gc_copybacks": 614,
        "gc_reads": 0,
        "gc_programs": 0,
        "gc_victim_valid_pages": 614,
        "wl_moves": 11,
        "wl_erases": 1,
        "erase_counts_per_die": [76, 76, 75, 78],
        "free_blocks_per_die": [3, 3, 3, 3],
        "live_pages": 779,
        "final_at_us": 4410700.0,
        "mapping_sha256": "c2fa3028a2d53182e0aca672bf34b2ff618d7dd0bb05f712458e30bc4758273a",
    },
    ("cost_benefit", 11): {
        "gc_erases": 303,
        "gc_copybacks": 604,
        "gc_reads": 0,
        "gc_programs": 0,
        "gc_victim_valid_pages": 604,
        "wl_moves": 0,
        "wl_erases": 0,
        "erase_counts_per_die": [76, 78, 75, 74],
        "free_blocks_per_die": [3, 3, 2, 2],
        "live_pages": 802,
        "final_at_us": 4380870.0,
        "mapping_sha256": "96b75f4e4a18d0c4d52eda8b8f41a860d9a85f22763a95bc552be886bbe7088e",
    },
}


@pytest.mark.parametrize("policy,seed", sorted(GOLDEN))
def test_engine_stats_bit_identical_to_seed(policy, seed):
    snapshot = run_engine_workload(policy, seed)
    expected = GOLDEN[(policy, seed)]
    diverged = {
        key: (snapshot[key], want)
        for key, want in expected.items()
        if snapshot[key] != want
    }
    assert not diverged, f"simulated behaviour changed vs. seed: {diverged}"


def test_goldens_exercise_every_gc_path():
    """The pinned workloads would be worthless if GC/WL never ran."""
    for expected in GOLDEN.values():
        assert expected["gc_erases"] > 0
        assert expected["gc_copybacks"] > 0
    assert any(e["wl_moves"] > 0 for e in GOLDEN.values())
