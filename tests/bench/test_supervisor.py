"""Shard supervision: crash/timeout/stall detection, retries, salvage.

The contract: a worker dying mid-run (SIGKILL, hang, SIGSTOP) costs that
cell at most a bounded retry — and because cells are deterministic, the
retried run's merged document is byte-identical to the sequential one.
Exhausted retries degrade loudly (an explicit ``degraded`` stanza or a
:class:`ShardDegradedError`), never silently.

Worker functions live at module level so spawn workers can unpickle them
by qualified name.
"""

import os
import signal
import time

import pytest

from repro.bench import (
    CellOutcome,
    ShardCell,
    ShardDegradedError,
    ShardPolicy,
    ShardRunReport,
    merge_metrics_docs,
    run_cells,
    run_cells_supervised,
)
from repro.obs.export import dump_json, metrics_doc, validate_metrics_doc


def _double(value: int) -> int:
    return value * 2


def _raise_error(message: str) -> None:
    raise RuntimeError(message)


def _sleep_forever() -> None:
    time.sleep(3600)


def _sigstop_self() -> None:
    os.kill(os.getpid(), signal.SIGSTOP)


def _kill_first_attempt(sentinel: str, value: int) -> int:
    """SIGKILL ourselves on the first attempt; compute on the retry."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _flaky_hotcold(sentinel: str, writes: int, separated: bool):
    """A real experiment cell whose first attempt dies mid-run."""
    from repro.bench.synthetic import SyntheticConfig, run_noftl_synthetic

    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return run_noftl_synthetic(SyntheticConfig(writes=writes), separated)


class TestShardPolicy:
    def test_defaults_are_valid(self):
        policy = ShardPolicy()
        assert policy.max_attempts == 2
        assert policy.timeout_polls is None

    def test_timeout_expressed_in_polls(self):
        policy = ShardPolicy(timeout_s=1.0, poll_interval_s=0.1)
        assert policy.timeout_polls == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"retries": -1},
            {"poll_interval_s": 0.0},
            {"heartbeat_interval_s": -0.1},
            {"stall_window_polls": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShardPolicy(**kwargs)


class TestSequentialPath:
    def test_single_shard_runs_inline(self):
        report = run_cells_supervised(
            [ShardCell("a", _double, (2,)), ShardCell("b", _double, (3,))], shards=1
        )
        assert report.results() == [4, 6]
        assert not report.degraded
        assert all(outcome.attempts == ("ok",) for outcome in report.outcomes)

    def test_inline_failures_propagate_unwrapped(self):
        with pytest.raises(RuntimeError, match="kaput"):
            run_cells_supervised([ShardCell("a", _raise_error, ("kaput",)),
                                  ShardCell("b", _raise_error, ("kaput",))], shards=1)


class TestSupervisedOutcomes:
    def test_error_cell_retries_then_degrades(self):
        policy = ShardPolicy(retries=1, allow_degraded=True)
        report = run_cells_supervised(
            [
                ShardCell("good", _double, (5,)),
                ShardCell("bad", _raise_error, ("kaput",)),
            ],
            shards=2,
            policy=policy,
        )
        assert report.results() == [10, None]
        assert report.degraded and report.retried
        (lost,) = report.lost
        assert lost.attempts == ("error", "error")
        assert "RuntimeError: kaput" in lost.detail
        section = report.degraded_section()
        assert section["lost_cells"] == ["bad"]
        assert section["cells"]["bad"]["attempts"] == ["error", "error"]
        report.raise_if_blocked()  # allow_degraded: no raise

    def test_strict_policy_raises_instead_of_silent_success(self):
        policy = ShardPolicy(retries=0, allow_degraded=False)
        report = run_cells_supervised(
            [
                ShardCell("good", _double, (5,)),
                ShardCell("bad", _raise_error, ("kaput",)),
            ],
            shards=2,
            policy=policy,
        )
        with pytest.raises(ShardDegradedError, match="bad"):
            report.raise_if_blocked()
        try:
            report.raise_if_blocked()
        except ShardDegradedError as exc:
            # survivors stay salvageable from the exception itself
            assert exc.report.results() == [10, None]

    def test_run_cells_is_always_strict(self):
        # the legacy API promises complete results; even a permissive
        # policy must not let it silently drop a cell
        policy = ShardPolicy(retries=0, allow_degraded=True)
        with pytest.raises(ShardDegradedError):
            run_cells(
                [
                    ShardCell("good", _double, (1,)),
                    ShardCell("bad", _raise_error, ("nope",)),
                ],
                shards=2,
                policy=policy,
            )

    def test_hung_worker_times_out(self):
        policy = ShardPolicy(
            timeout_s=1.0, poll_interval_s=0.1, retries=0, allow_degraded=True
        )
        report = run_cells_supervised(
            [ShardCell("hang", _sleep_forever), ShardCell("ok", _double, (1,))],
            shards=2,
            policy=policy,
        )
        assert report.results() == [None, 2]
        (lost,) = report.lost
        assert lost.attempts == ("timeout",)
        assert "no result within" in lost.detail

    def test_sigstopped_worker_detected_as_stalled(self):
        policy = ShardPolicy(
            poll_interval_s=0.05,
            heartbeat_interval_s=0.02,
            stall_window_polls=10,
            retries=0,
            allow_degraded=True,
        )
        report = run_cells_supervised(
            [ShardCell("frozen", _sigstop_self), ShardCell("ok", _double, (2,))],
            shards=2,
            policy=policy,
        )
        assert report.results() == [None, 4]
        (lost,) = report.lost
        assert lost.attempts == ("stalled",)
        assert "heartbeat frozen" in lost.detail

    def test_sigkilled_worker_recovers_via_retry(self, tmp_path):
        sentinel = str(tmp_path / "first-attempt")
        report = run_cells_supervised(
            [
                ShardCell("flaky", _kill_first_attempt, (sentinel, 21)),
                ShardCell("solid", _double, (4,)),
            ],
            shards=2,
            policy=ShardPolicy(retries=1),
        )
        assert report.results() == [42, 8]
        assert not report.degraded
        flaky = report.outcomes[0]
        assert flaky.attempts == ("crash", "ok")


class TestKilledWorkerByteIdentity:
    def test_retried_merged_doc_is_byte_identical_to_sequential(self, tmp_path):
        """Acceptance gate: SIGKILL one worker mid-run; after the retry the
        merged repro.obs/v1 document equals the sequential one byte for
        byte."""
        from repro.bench.synthetic import SyntheticConfig, run_noftl_synthetic

        writes = 800
        sentinel = str(tmp_path / "mixed-first-attempt")
        report = run_cells_supervised(
            [
                ShardCell("mixed", _flaky_hotcold, (sentinel, writes, False)),
                ShardCell("separated", _flaky_hotcold, ("/nonexistent", writes, True)),
            ],
            shards=2,
            policy=ShardPolicy(retries=1),
        )
        assert os.path.exists(sentinel), "the kill path never ran"
        assert report.outcomes[0].attempts == ("crash", "ok")
        sharded_doc = merge_metrics_docs([
            metrics_doc("hotcold", {result.name: result.metrics()})
            for result in report.results()
        ])
        config = SyntheticConfig(writes=writes)
        sequential_doc = merge_metrics_docs([
            metrics_doc("hotcold", {result.name: result.metrics()})
            for result in (
                run_noftl_synthetic(config, False),
                run_noftl_synthetic(config, True),
            )
        ])
        assert dump_json(sharded_doc) == dump_json(sequential_doc)

    def test_degraded_doc_names_lost_cells_and_still_validates(self):
        report = ShardRunReport(
            outcomes=(
                CellOutcome(name="kept", ok=True, result={"summary": {"x": 1.0}},
                            attempts=("ok",)),
                CellOutcome(name="gone", ok=False, result=None,
                            attempts=("crash", "timeout"), detail="exitcode -9"),
            ),
            policy=ShardPolicy(allow_degraded=True),
        )
        doc = metrics_doc("demo", {"kept": {"summary": {"x": 1.0}}})
        doc["degraded"] = report.degraded_section()
        validate_metrics_doc(doc)
        assert doc["degraded"]["lost_cells"] == ["gone"]
        assert doc["degraded"]["cells"]["gone"]["attempts"] == ["crash", "timeout"]
