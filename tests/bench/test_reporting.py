"""Unit tests for report rendering and the experiment harness helpers."""

import os

import pytest

from repro.bench.experiment import (
    TPCCExperimentConfig,
    TPCCExperimentResult,
    _delta,
    _derive_latencies,
)
from repro.bench.reporting import (
    FIGURE3_ROWS,
    figure3_table,
    format_cell,
    format_value,
    render_series,
    render_single,
    render_table,
    save_report,
)


class TestFormatting:
    def test_counts_are_comma_grouped(self):
        assert format_value(1234567.0) == "1,234,567"

    def test_rates_keep_decimals(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(0.53) == "0.53"

    def test_cells(self):
        assert format_cell(12.5) == "12.50"
        assert format_cell("text") == "text"
        assert format_cell(7) == "7"


class TestTables:
    def test_render_table_has_ratio_column(self):
        out = render_table("T", [("metric", 100.0, 80.0)], "a", "b")
        assert "0.80x" in out
        assert "metric" in out

    def test_render_table_zero_base(self):
        out = render_table("T", [("m", 0.0, 0.0)], "a", "b")
        assert "1.00x" in out

    def test_render_series_aligns_columns(self):
        out = render_series("S", ["name", "value"], [["row1", 5], ["longer-row", 12345]])
        lines = out.splitlines()
        assert "name" in lines[2]
        assert any("longer-row" in line for line in lines)

    def test_render_single(self):
        out = render_single("block", {"a": 1.0, "bb": 2.5})
        assert "a" in out and "bb" in out

    def test_save_report_writes_file(self, tmp_path, capsys):
        path = save_report("unit_test_report", "hello world", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as f:
            assert f.read().strip() == "hello world"
        assert "hello world" in capsys.readouterr().out


class TestExperimentHelpers:
    def test_delta_numbers_and_lists(self):
        after = {"n": 10.0, "buckets": [3, 4]}
        before = {"n": 4.0, "buckets": [1, 1]}
        delta = _delta(after, before)
        assert delta == {"n": 6.0, "buckets": [2, 3]}

    def test_delta_missing_before_keys(self):
        assert _delta({"n": 5.0}, {}) == {"n": 5.0}

    def test_derive_latencies(self):
        storage = {
            "read_latency_total_us": 1000.0,
            "read_latency_count": 10.0,
            "write_latency_total_us": 0.0,
            "write_latency_count": 0.0,
            "read_latency_buckets": [0] * 72,
            "write_latency_buckets": [0] * 72,
        }
        storage["read_latency_buckets"][30] = 10
        _derive_latencies(storage)
        assert storage["read_latency_us"] == 100.0
        assert storage["write_latency_us"] == 0.0
        assert storage["read_latency_p99_us"] > 0

    def test_config_with_budget(self):
        config = TPCCExperimentConfig(name="x", num_transactions=10)
        copy = config.with_budget(duration_us=5.0)
        assert copy.num_transactions is None
        assert copy.duration_us == 5.0
        assert config.num_transactions == 10  # original untouched

    def test_result_row_lookup(self):
        result = TPCCExperimentResult(
            config=TPCCExperimentConfig(name="x"),
            workload={"tps": 5.0},
            storage={"gc_erases": 2.0},
            device={"flash_reads": 7.0},
            per_region={},
            load_time_us=0.0,
        )
        assert result.row("tps") == 5.0
        assert result.row("gc_erases") == 2.0
        assert result.row("flash_reads") == 7.0
        with pytest.raises(KeyError):
            result.row("nope")

    def test_figure3_rows_cover_paper_metrics(self):
        labels = [label for label, __, ___ in FIGURE3_ROWS]
        for expected in ("TPS", "GC COPYBACKs", "GC ERASEs", "Host READ I/Os"):
            assert any(expected in label for label in labels)
