"""Sharded execution: order-stable fan-out and deterministic doc merge.

The contract under test is the one the CLI relies on: ``--shards N``
must produce the exact ``repro.obs/v1`` document the sequential path
emits.  Cells are partition-closed by construction (each owns its whole
device), so the merge is an order-preserving union — pinned here both at
the unit level and end-to-end with real worker processes.
"""

import math
import operator

import pytest

from repro.bench import (
    MergeError,
    ShardCell,
    SyntheticConfig,
    merge_metrics_docs,
    run_cells,
    run_hotcold_shards,
)
from repro.obs.export import metrics_doc, validate_metrics_doc


class TestRunCells:
    def test_sequential_runs_in_order(self):
        cells = [ShardCell(str(n), math.factorial, (n,)) for n in (3, 5, 7)]
        assert run_cells(cells, shards=1) == [6, 120, 5040]

    def test_parallel_results_keep_submission_order(self):
        # stdlib callables: picklable by reference in spawn workers
        cells = [ShardCell(str(n), operator.neg, (n,)) for n in range(6)]
        assert run_cells(cells, shards=3) == [0, -1, -2, -3, -4, -5]

    def test_single_cell_never_spawns(self):
        # a lambda is unpicklable: this only passes on the in-process path
        assert run_cells([ShardCell("one", lambda: 42)], shards=8) == [42]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            run_cells([], shards=0)


class TestMergeMetricsDocs:
    def _doc(self, name, value, **extra):
        return metrics_doc("demo", {name: {"summary": {"x": value}}}, **extra)

    def test_disjoint_union_preserves_order_and_extras(self):
        merged = merge_metrics_docs([
            self._doc("a", 1.0, policies={"gc": "greedy"}),
            self._doc("b", 2.0, policies={"gc": "greedy"}),
        ])
        assert list(merged["configs"]) == ["a", "b"]
        assert merged["policies"] == {"gc": "greedy"}
        assert validate_metrics_doc(merged) is merged
        assert merged == metrics_doc(
            "demo",
            {"a": {"summary": {"x": 1.0}}, "b": {"summary": {"x": 2.0}}},
            policies={"gc": "greedy"},
        )

    def test_colliding_configs_sum_counters(self):
        merged = merge_metrics_docs([self._doc("a", 1.0), self._doc("a", 2.5)])
        assert merged["configs"]["a"]["summary"]["x"] == 3.5

    def test_colliding_lists_sum_elementwise(self):
        docs = [
            metrics_doc("demo", {"a": {"s": {"buckets": [1, 2]}}}),
            metrics_doc("demo", {"a": {"s": {"buckets": [10, 20]}}}),
        ]
        assert merge_metrics_docs(docs)["configs"]["a"]["s"]["buckets"] == [11, 22]

    def test_command_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics_docs([
                metrics_doc("demo", {"a": {}}),
                metrics_doc("other", {"b": {}}),
            ])

    def test_conflicting_extras_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics_docs([
                self._doc("a", 1.0, policies={"gc": "greedy"}),
                self._doc("b", 2.0, policies={"gc": "cost_benefit"}),
            ])

    def test_structural_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics_docs([
                metrics_doc("demo", {"a": {"s": {"x": 1.0}}}),
                metrics_doc("demo", {"a": {"s": {"x": [1.0]}}}),
            ])

    def test_inputs_are_not_mutated(self):
        left, right = self._doc("a", 1.0), self._doc("a", 2.0)
        merge_metrics_docs([left, right])
        assert left["configs"]["a"]["summary"]["x"] == 1.0
        assert right["configs"]["a"]["summary"]["x"] == 2.0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics_docs([])

    def test_merge_error_is_typed_and_a_value_error(self):
        # pre-existing callers catch ValueError; new callers can be precise
        assert issubclass(MergeError, ValueError)
        with pytest.raises(MergeError):
            merge_metrics_docs([])

    def test_schema_version_mismatch_is_loud(self):
        doc = self._doc("a", 1.0)
        other = self._doc("b", 2.0)
        other["schema"] = "repro.obs/v2"
        with pytest.raises(MergeError, match="different schema versions"):
            merge_metrics_docs([doc, other])

    def test_key_set_mismatch_names_the_stray_keys(self):
        # a shard missing one counter (or inventing one) is a corrupted
        # shard: the merge must fail, not union a half-empty tree
        docs = [
            metrics_doc("demo", {"a": {"s": {"x": 1.0, "y": 2.0}}}),
            metrics_doc("demo", {"a": {"s": {"x": 1.0, "z": 3.0}}}),
        ]
        with pytest.raises(MergeError, match="disagree on keys") as exc:
            merge_metrics_docs(docs)
        assert "'y'" in str(exc.value) and "'z'" in str(exc.value)

    def test_nested_key_set_mismatch_reports_the_path(self):
        docs = [
            metrics_doc("demo", {"a": {"s": {"inner": {"x": 1.0}}}}),
            metrics_doc("demo", {"a": {"s": {"inner": {}}}}),
        ]
        with pytest.raises(MergeError, match=r"a\.s\.inner"):
            merge_metrics_docs(docs)


def _hotcold_doc(config) -> dict:
    mixed, separated = run_hotcold_shards(config)
    return merge_metrics_docs([
        metrics_doc("hotcold", {result.name: result.metrics()})
        for result in (mixed, separated)
    ])


def test_two_shards_match_single_process_doc():
    """End-to-end gate: the merged 2-shard document equals the sequential
    one, field for field — real spawn workers, real simulation."""
    sequential = _hotcold_doc(SyntheticConfig(writes=1200, shards=1))
    sharded = _hotcold_doc(SyntheticConfig(writes=1200, shards=2))
    assert sharded == sequential
