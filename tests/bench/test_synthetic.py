"""Unit tests for the synthetic hot/cold workload harness."""

import pytest

from repro.bench import (
    HOT_COLD_CLASSES,
    ObjectClass,
    SyntheticConfig,
    run_ftl_synthetic,
    run_noftl_synthetic,
)
from repro.bench.synthetic import _die_shares
from repro.flash import instant_timing


def quick_config(**kwargs):
    defaults = dict(writes=3000, timing=instant_timing())
    defaults.update(kwargs)
    return SyntheticConfig(**defaults)


class TestObjectClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectClass("x", space_share=0.0, traffic_share=0.5)
        with pytest.raises(ValueError):
            ObjectClass("x", space_share=0.5, traffic_share=1.5)
        with pytest.raises(ValueError):
            ObjectClass("x", space_share=0.5, traffic_share=0.5, kind="other")


class TestDieShares:
    def test_covers_all_dies(self):
        shares = _die_shares(HOT_COLD_CLASSES, 8, utilization=0.7)
        assert sum(shares) == 8
        assert all(s >= 1 for s in shares)

    def test_capacity_repair_gives_cold_class_room(self):
        shares = _die_shares(HOT_COLD_CLASSES, 8, utilization=0.7)
        # cold holds 87.5% of data: its region must hold it with slack
        cold_need = 0.875 * 0.7 * 8
        assert shares[1] >= cold_need / 0.9

    def test_single_class(self):
        shares = _die_shares((ObjectClass("only", 1.0, 1.0),), 4, utilization=0.5)
        assert shares == [4]


class TestNoFTLSynthetic:
    def test_mixed_and_separated_complete(self):
        config = quick_config()
        mixed = run_noftl_synthetic(config, separated=False)
        separated = run_noftl_synthetic(config, separated=True)
        assert mixed.writes == separated.writes == config.writes
        assert mixed.name == "mixed"
        assert separated.name == "separated"

    def test_separation_reduces_copybacks(self):
        config = quick_config(writes=8000)
        mixed = run_noftl_synthetic(config, separated=False)
        separated = run_noftl_synthetic(config, separated=True)
        assert separated.copybacks < mixed.copybacks

    def test_append_class_grows(self):
        classes = (
            ObjectClass("hot", space_share=0.2, traffic_share=0.7),
            ObjectClass("log", space_share=0.3, traffic_share=0.3, kind="append"),
        )
        config = quick_config(classes=classes, utilization=0.4, writes=2000)
        result = run_noftl_synthetic(config, separated=True)
        assert result.writes == 2000

    def test_write_amplification_at_least_one(self):
        result = run_noftl_synthetic(quick_config(), separated=True)
        assert result.write_amplification >= 1.0

    def test_deterministic(self):
        a = run_noftl_synthetic(quick_config(), separated=False)
        b = run_noftl_synthetic(quick_config(), separated=False)
        assert (a.copybacks, a.erases) == (b.copybacks, b.erases)


class TestFTLSynthetic:
    def test_page_ftl_completes(self):
        result = run_ftl_synthetic(quick_config(), ftl="page")
        assert result.writes == 3000
        assert result.erases > 0

    def test_dftl_adds_translation_overhead(self):
        config = quick_config(writes=6000)
        page = run_ftl_synthetic(config, ftl="page")
        dftl = run_ftl_synthetic(config, ftl="dftl", cmt_entries=64)
        assert dftl.erases >= page.erases

    def test_unknown_ftl_rejected(self):
        with pytest.raises(ValueError):
            run_ftl_synthetic(quick_config(), ftl="hybrid")

    def test_ftl_matches_mixed_noftl(self):
        """Same engine, same knowledge: page FTL == mixed NoFTL exactly."""
        config = quick_config(writes=6000)
        ftl = run_ftl_synthetic(config, ftl="page")
        noftl = run_noftl_synthetic(config, separated=False)
        assert ftl.copybacks == noftl.copybacks
        assert ftl.erases == noftl.erases
