"""Tests for the ASCII timeline renderer."""

import pytest

from repro.bench.timeline import gc_interference_report, render_timeline
from repro.flash import FlashDevice, FlashTracer, PhysicalBlockAddress, PhysicalPageAddress, small_geometry
from repro.flash.trace import TraceEvent


def event(op, die, start, end, issue=None):
    return TraceEvent(op, die, 0, 0, issue if issue is not None else start, start, end)


class TestRenderTimeline:
    def test_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_single_op_fills_its_slices(self):
        events = [event("read_page", 0, 0.0, 50.0), event("program_page", 0, 50.0, 100.0)]
        out = render_timeline(events, width=10)
        row = [line for line in out.splitlines() if line.startswith("die   0")][0]
        body = row.split("|")[1]
        assert body == "RRRRRWWWWW"

    def test_idle_gaps_are_dots(self):
        events = [event("read_page", 0, 0.0, 10.0), event("read_page", 0, 90.0, 100.0)]
        out = render_timeline(events, width=10)
        body = [l for l in out.splitlines() if l.startswith("die")][0].split("|")[1]
        assert body[0] == "R" and body[-1] == "R"
        assert "." in body

    def test_multiple_dies(self):
        events = [event("read_page", 0, 0.0, 100.0), event("erase_block", 3, 0.0, 100.0)]
        out = render_timeline(events, width=5)
        assert "die   0 |RRRRR|" in out
        assert "die   3 |EEEEE|" in out

    def test_die_filter(self):
        events = [event("read_page", 0, 0.0, 10.0), event("read_page", 1, 0.0, 10.0)]
        out = render_timeline(events, dies=[1], width=4)
        assert "die   0" not in out
        assert "die   1" in out

    def test_window_validation(self):
        with pytest.raises(ValueError):
            render_timeline([event("read_page", 0, 0.0, 10.0)], start_us=5.0, end_us=5.0)
        with pytest.raises(ValueError):
            render_timeline([event("read_page", 0, 0.0, 10.0)], width=1)

    def test_from_real_trace(self):
        device = FlashDevice(small_geometry())
        tracer = FlashTracer.attach(device)
        for page in range(4):
            device.program_page(PhysicalPageAddress(0, 0, page), b"x")
        device.erase_block(PhysicalBlockAddress(0, 0))
        out = render_timeline(list(tracer.events), width=20)
        assert "W" in out and "E" in out
        tracer.detach()


class TestInterferenceReport:
    def test_empty(self):
        device = FlashDevice(small_geometry())
        tracer = FlashTracer(device)
        assert gc_interference_report(tracer) == "(no events)"

    def test_reports_blockers(self):
        device = FlashDevice(small_geometry())
        tracer = FlashTracer.attach(device)
        # an erase occupies die 0; a read issued meanwhile queues behind it
        device.program_page(PhysicalPageAddress(0, 0, 0), b"x", at=0.0)
        device.erase_block(PhysicalBlockAddress(0, 1), at=600.0)
        device.read_page(PhysicalPageAddress(0, 0, 0), at=650.0)
        report = gc_interference_report(tracer, top=1)
        assert "read_page d0 waited" in report
        assert "erase_block" in report
        tracer.detach()
