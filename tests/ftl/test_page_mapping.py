"""Unit tests for the baseline page-mapping FTL."""

import pytest

from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.ftl import DeviceFullError, PageMappingFTL


def make_ftl(**kwargs):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=8,
        page_size=256,
        oob_size=16,
        max_pe_cycles=10_000,
    )
    device = FlashDevice(geometry, timing=instant_timing())
    defaults = dict(overprovision=0.4)
    defaults.update(kwargs)
    return PageMappingFTL(device, **defaults)


class TestBasicIO:
    def test_write_then_read_roundtrip(self):
        ftl = make_ftl()
        ftl.write(0, b"alpha")
        ftl.write(1, b"beta")
        assert ftl.read(0)[0] == b"alpha"
        assert ftl.read(1)[0] == b"beta"

    def test_overwrite_returns_latest(self):
        ftl = make_ftl()
        for version in range(5):
            ftl.write(3, f"v{version}".encode())
        assert ftl.read(3)[0] == b"v4"

    def test_read_unwritten_lba_raises(self):
        ftl = make_ftl()
        with pytest.raises(KeyError):
            ftl.read(0)

    def test_lba_bounds_checked(self):
        ftl = make_ftl()
        with pytest.raises(ValueError):
            ftl.write(ftl.num_lbas, b"x")
        with pytest.raises(ValueError):
            ftl.read(-1)

    def test_num_lbas_respects_overprovision(self):
        ftl = make_ftl(overprovision=0.4)
        total = ftl.geometry.total_pages
        assert ftl.num_lbas == int(total * 0.6)

    def test_host_counters(self):
        ftl = make_ftl()
        ftl.write(0, b"x")
        ftl.write(0, b"y")
        ftl.read(0)
        assert ftl.stats.host_writes == 2
        assert ftl.stats.host_reads == 1

    def test_trim_forgets_data(self):
        ftl = make_ftl()
        ftl.write(0, b"x")
        ftl.trim(0)
        with pytest.raises(KeyError):
            ftl.read(0)

    def test_writes_stripe_across_dies(self):
        ftl = make_ftl()
        for lba in range(8):
            ftl.write(lba, b"x")
        per_die = ftl.device.stats.programs_per_die
        assert all(count == 2 for count in per_die)


class TestGarbageCollection:
    def test_gc_reclaims_space_under_update_load(self):
        ftl = make_ftl()
        # hammer a small working set far beyond raw capacity
        for i in range(ftl.geometry.total_pages * 3):
            ftl.write(i % 8, bytes([i % 256]))
        assert ftl.stats.gc_erases > 0
        assert ftl.stats.gc_copybacks >= 0
        # data still correct after heavy GC
        for lba in range(8):
            assert ftl.read(lba)[0] is not None
        ftl.check_consistency()

    def test_gc_preserves_cold_data(self):
        ftl = make_ftl()
        cold = {lba: bytes([lba]) * 4 for lba in range(20)}
        for lba, payload in cold.items():
            ftl.write(lba, payload)
        # hot updates force GC to relocate the cold pages eventually
        hot = ftl.num_lbas - 1
        for i in range(ftl.geometry.total_pages * 3):
            ftl.write(hot, bytes([i % 256]))
        for lba, payload in cold.items():
            assert ftl.read(lba)[0] == payload
        ftl.check_consistency()

    def test_write_amplification_above_one_under_skewed_churn(self):
        import random

        rng = random.Random(1)
        ftl = make_ftl()
        # mixed hot/cold updates leave live pages in GC victims
        for lba in range(ftl.num_lbas):
            ftl.write(lba, b"seed")
        for __ in range(ftl.geometry.total_pages * 4):
            if rng.random() < 0.9:
                ftl.write(rng.randrange(8), b"hot")
            else:
                ftl.write(rng.randrange(ftl.num_lbas), b"warm")
        assert ftl.stats.write_amplification > 1.0
        assert ftl.stats.gc_copybacks > 0

    def test_overcommitted_export_rejected_at_construction(self):
        with pytest.raises(ValueError, match="overprovision"):
            make_ftl(overprovision=0.0)

    def test_gc_policy_validated_at_construction(self):
        # registry resolution is eager: a bogus name fails fast, not mid-GC
        with pytest.raises(ValueError, match="bogus"):
            make_ftl(gc_policy="bogus")


class TestWearLeveling:
    def test_wear_leveling_moves_cold_blocks(self):
        ftl = make_ftl(
            wear_level_threshold=4,
            wl_check_interval_erases=8,
        )
        # cold data that never moves on its own
        for lba in range(16):
            ftl.write(lba, b"cold")
        # hot churn elsewhere drives erase counts up
        for i in range(ftl.geometry.total_pages * 12):
            ftl.write(16 + (i % 4), bytes([i % 256]))
        assert ftl.stats.wl_moves > 0
        for lba in range(16):
            assert ftl.read(lba)[0] == b"cold"
        ftl.check_consistency()

    def test_wear_leveling_narrows_erase_spread(self):
        def spread(ftl):
            counts = [b.erase_count for die in ftl.device.dies for b in die.blocks]
            return max(counts) - min(counts)

        churn = lambda f: [f.write(16 + (i % 4), b"x") for i in range(f.geometry.total_pages * 12)]
        plain = make_ftl()
        for lba in range(16):
            plain.write(lba, b"cold")
        churn(plain)
        leveled = make_ftl(wear_level_threshold=4, wl_check_interval_erases=8)
        for lba in range(16):
            leveled.write(lba, b"cold")
        churn(leveled)
        assert spread(leveled) <= spread(plain)


class TestConsistency:
    def test_check_consistency_on_fresh_device(self):
        make_ftl().check_consistency()

    def test_mapped_lbas_counts(self):
        ftl = make_ftl()
        ftl.write(0, b"x")
        ftl.write(5, b"y")
        ftl.write(0, b"z")
        assert ftl.mapped_lbas() == 2
