"""Unit tests for the on-device hot/cold FTL heuristic."""

import random

import pytest

from repro.flash import FlashDevice, FlashGeometry, PhysicalPageAddress, instant_timing
from repro.ftl import HotColdFTL, PageMappingFTL, UpdateFrequencySketch


def make_device():
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=8,
        page_size=256,
        oob_size=16,
        max_pe_cycles=100_000,
    )
    return FlashDevice(geometry, timing=instant_timing())


def make_hotcold(**kwargs):
    defaults = dict(overprovision=0.4, sketch_slots=64, decay_interval=512)
    defaults.update(kwargs)
    return HotColdFTL(make_device(), **defaults)


class TestSketch:
    def test_counts_updates(self):
        sketch = UpdateFrequencySketch(slots=16)
        for __ in range(5):
            sketch.record(3)
        assert sketch.estimate(3) == 5
        assert sketch.estimate(4) == 0

    def test_aliasing_shares_heat(self):
        sketch = UpdateFrequencySketch(slots=16)
        sketch.record(1)
        assert sketch.estimate(17) == 1  # 17 % 16 == 1: limited resources

    def test_decay_halves_counters(self):
        sketch = UpdateFrequencySketch(slots=4, decay_interval=10)
        for __ in range(10):
            sketch.record(0)
        assert sketch.estimate(0) == 5  # halved at the 10th record

    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateFrequencySketch(slots=0)
        with pytest.raises(ValueError):
            UpdateFrequencySketch(decay_interval=0)


class TestHotColdFTL:
    def test_roundtrip(self):
        ftl = make_hotcold()
        for lba in range(20):
            ftl.write(lba, bytes([lba]))
        for lba in range(20):
            assert ftl.read(lba)[0] == bytes([lba])
        ftl.check_consistency()

    def test_learns_hot_lbas(self):
        ftl = make_hotcold()
        for __ in range(50):
            ftl.write(5, b"hot")
        for lba in range(20, 40):
            ftl.write(lba, b"cold")
        assert ftl.classify(5)
        assert not ftl.classify(25)
        assert ftl.hot_writes > 0
        assert ftl.cold_writes > 0

    def test_hot_and_cold_fill_separate_blocks(self):
        ftl = make_hotcold()
        # train: lba 0 is scorching
        for __ in range(60):
            ftl.write(0, b"h")
        cold_lbas = list(range(10, 30))
        for lba in cold_lbas:
            ftl.write(lba, b"c")
        ftl.write(0, b"h")
        engine = ftl.engine
        geometry = ftl.geometry

        def block_of(lba):
            ppa = PhysicalPageAddress.from_int(engine._map[lba], geometry)
            return (ppa.die, ppa.block)

        hot_block = block_of(0)
        cold_blocks = {block_of(lba) for lba in cold_lbas}
        assert hot_block not in cold_blocks

    def test_reduces_copybacks_vs_plain_ftl_under_skew(self):
        def churn(ftl, writes=4000, seed=2):
            rng = random.Random(seed)
            for lba in range(ftl.num_lbas // 2):
                ftl.write(lba, b"seed")
            for __ in range(writes):
                if rng.random() < 0.9:
                    ftl.write(rng.randrange(8), b"hot")
                else:
                    ftl.write(rng.randrange(ftl.num_lbas // 2), b"warm")
            return ftl.stats.gc_copybacks

        plain = churn(PageMappingFTL(make_device(), overprovision=0.4))
        separated = churn(make_hotcold())
        assert separated < plain

    def test_survives_gc_churn(self):
        rng = random.Random(7)
        ftl = make_hotcold()
        payloads = {}
        for __ in range(3000):
            lba = rng.randrange(ftl.num_lbas // 2)
            payload = bytes([rng.randrange(256)])
            ftl.write(lba, payload)
            payloads[lba] = payload
        assert ftl.stats.gc_erases > 0
        for lba, payload in payloads.items():
            assert ftl.read(lba)[0] == payload
        ftl.check_consistency()

    def test_invalid_hot_factor(self):
        with pytest.raises(ValueError):
            make_hotcold(hot_factor=0)
