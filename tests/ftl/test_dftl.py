"""Unit tests for DFTL (cached mapping table) behaviour."""

import pytest

from repro.flash import FlashDevice, FlashGeometry, instant_timing
from repro.ftl import DFTL, PageMappingFTL


def make_dftl(cmt_entries=8, **kwargs):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=8,
        page_size=256,
        oob_size=16,
        max_pe_cycles=10_000,
    )
    device = FlashDevice(geometry, timing=instant_timing())
    defaults = dict(overprovision=0.4)
    defaults.update(kwargs)
    return DFTL(device, cmt_entries=cmt_entries, **defaults)


class TestCorrectness:
    def test_roundtrip_with_tiny_cmt(self):
        dftl = make_dftl(cmt_entries=2)
        payloads = {lba: bytes([lba]) * 8 for lba in range(32)}
        for lba, payload in payloads.items():
            dftl.write(lba, payload)
        for lba, payload in payloads.items():
            assert dftl.read(lba)[0] == payload

    def test_rejects_zero_cmt(self):
        with pytest.raises(ValueError):
            make_dftl(cmt_entries=0)

    def test_user_space_shrinks_for_translation_pages(self):
        dftl = make_dftl()
        geometry = dftl.geometry
        device = FlashDevice(geometry, timing=instant_timing())
        plain = PageMappingFTL(device, overprovision=0.4)
        assert dftl.num_lbas < plain.num_lbas

    def test_consistency_after_churn(self):
        import random

        rng = random.Random(3)
        dftl = make_dftl(cmt_entries=4)
        for __ in range(600):
            dftl.write(rng.randrange(dftl.num_lbas // 2), b"x")
        dftl.check_consistency()


class TestTranslationTraffic:
    def test_cmt_hit_costs_no_translation_io(self):
        dftl = make_dftl(cmt_entries=8)
        dftl.write(0, b"a")
        before = dftl.stats.trans_reads
        for __ in range(10):
            dftl.read(0)  # always a CMT hit
        assert dftl.stats.trans_reads == before

    def test_misses_trigger_translation_reads(self):
        dftl = make_dftl(cmt_entries=2)
        # fill enough LBAs that their mapping entries must be evicted,
        # persisted, and later demand-fetched
        entries = dftl.entries_per_tpage  # 256 bytes / 8 = 32
        lbas = [i * entries for i in range(4)]  # distinct translation pages
        for lba in lbas:
            if lba < dftl.num_lbas:
                dftl.write(lba, b"x")
        # revisit the first lba: its entry was evicted from the 2-entry CMT
        dftl.read(lbas[0])
        assert dftl.stats.trans_reads > 0

    def test_dirty_evictions_write_translation_pages(self):
        dftl = make_dftl(cmt_entries=2)
        entries = dftl.entries_per_tpage
        for i in range(6):
            lba = (i * entries) % dftl.num_lbas
            dftl.write(lba, b"x")
        assert dftl.stats.trans_writes > 0

    def test_cmt_respects_capacity(self):
        dftl = make_dftl(cmt_entries=4)
        for lba in range(16):
            dftl.write(lba, b"x")
        assert dftl.cmt_len() <= 4

    def test_batched_eviction_cleans_siblings(self):
        dftl = make_dftl(cmt_entries=4)
        # four dirty entries in the same translation page
        for lba in range(4):
            dftl.write(lba, b"x")
        before = dftl.stats.trans_writes
        # force an eviction with a 5th entry from another translation page
        other = dftl.entries_per_tpage
        dftl.write(other, b"y")
        # one translation write flushed all four siblings
        assert dftl.stats.trans_writes == before + 1
        # subsequent evictions of the cleaned siblings cost nothing
        dftl.write(other + 1, b"y")
        assert dftl.stats.trans_writes == before + 1


class TestInteractionWithGC:
    def test_translation_pages_survive_gc(self):
        import random

        rng = random.Random(7)
        dftl = make_dftl(cmt_entries=4)
        payloads = {}
        for __ in range(800):
            lba = rng.randrange(min(64, dftl.num_lbas))
            payload = bytes([rng.randrange(256)]) * 4
            dftl.write(lba, payload)
            payloads[lba] = payload
        assert dftl.stats.gc_erases > 0
        for lba, payload in payloads.items():
            assert dftl.read(lba)[0] == payload
