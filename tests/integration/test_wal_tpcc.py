"""Integration: TPC-C with redo logging — replay reproduces the database."""

from repro.core import traditional_placement
from repro.db import Database, replay_log
from repro.flash import FlashGeometry, instant_timing
from repro.tpcc import Driver, check_consistency, load_database, tiny_scale


def geometry():
    return FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=48,
        pages_per_block=32,
        page_size=2048,
        oob_size=64,
        max_pe_cycles=1_000_000,
    )


def build():
    return Database.on_native_flash(
        geometry=geometry(),
        placement=traditional_placement(16),
        timing=instant_timing(),
        buffer_pages=256,
    )


class TestTPCCWithWAL:
    def test_logged_run_replays_to_identical_state(self):
        scale = tiny_scale()

        # source: load is the "backup"; logging starts after it
        source = build()
        load_database(source, scale, seed=21)
        source.enable_wal()
        Driver(source, scale, terminals=4, seed=21).run(num_transactions=200)
        assert source.wal.records_written > 0
        t = source.wal.flush(source.now)

        # target: restore the backup (same load), replay the log
        target = build()
        load_database(target, scale, seed=21)
        applied, t = replay_log(target, source.wal, t)
        assert applied > 0

        for name in ("ORDER", "NEW_ORDER", "ORDERLINE", "CUSTOMER", "STOCK", "HISTORY"):
            source_rows = sorted(r for __, r, ___ in source.table(name).scan(t))
            target_rows = sorted(r for __, r, ___ in target.table(name).scan(t))
            assert source_rows == target_rows, f"{name} diverged after replay"

        check_consistency(target).raise_if_violated()

    def test_wal_adds_write_traffic_to_its_region(self):
        scale = tiny_scale()
        db = build()
        load_database(db, scale, seed=22)
        db.enable_wal()
        Driver(db, scale, terminals=4, seed=22).run(num_transactions=150)
        db.wal.flush(db.now)
        assert db.wal.flushed_pages > 0
        ts = db.catalog.tablespace("ts_WAL")
        assert db.backend.space_writes.get(ts.space_id, 0) == db.wal.flushed_pages
