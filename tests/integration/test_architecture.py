"""Integration tests validating the NoFTL architecture wiring (Figure 1).

Figure 1's chain: Buffer Manager -> Storage Manager (address translation,
out-of-place updates, flushers) -> Native Flash Interface (read/program
page, erase block, copyback, page metadata) -> flash.  These tests drive
the whole stack through the public API and check that each layer actually
participated.
"""

import pytest

from repro.core import RegionConfig, figure2_placement, traditional_placement
from repro.db import Database
from repro.flash import FlashGeometry, TimingModel
from repro.tpcc import Driver, load_database, tiny_scale


def geometry():
    return FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=48,
        pages_per_block=32,
        page_size=2048,
        oob_size=64,
        max_pe_cycles=1_000_000,
    )


class TestNoFTLStack:
    def test_ddl_to_flash_roundtrip(self):
        """The paper's Section 2 DDL drives real flash commands."""
        db = Database.on_native_flash(geometry=geometry(), buffer_pages=32)
        db.execute_script(
            """
            CREATE REGION rgHotTbl (MAX_CHIPS=4, MAX_CHANNELS=4, DIES=4);
            CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT SIZE 64K);
            CREATE TABLE T (t_id NUMBER(3), payload CHAR(64)) TABLESPACE tsHotTbl
            """
        )
        table = db.table("T")
        t = 0.0
        rids = []
        for i in range(200):
            rid, t = table.insert((i, f"row {i}"), t)
            rids.append(rid)
        t = db.checkpoint(t)
        # flash-level evidence: pages were programmed on the region's dies
        region = db.store.region("rgHotTbl")
        programs = sum(db.device.stats.programs_per_die[d] for d in region.dies)
        assert programs > 0
        other = sum(db.device.stats.programs_per_die[d] for d in range(db.device.geometry.dies) if d not in region.dies and d not in db.store.region("rgSystem").dies)
        assert other == 0
        # page metadata carries logical identity (native interface feature)
        from repro.flash import PhysicalPageAddress

        die = region.dies[0]
        block = next(
            b for b, blk in enumerate(db.device.dies[die].blocks) if blk.write_pointer > 0
        )
        meta = db.device.read_metadata(PhysicalPageAddress(die, block, 0), at=t).metadata
        assert meta is not None and meta.lpn is not None

    def test_out_of_place_updates_visible_in_erase_counts(self):
        db = Database.on_native_flash(
            geometry=geometry(), buffer_pages=16, flusher_interval=8
        )
        db.execute("CREATE REGION rg (DIES=2)")
        db.execute("CREATE TABLESPACE ts (REGION=rg)")
        db.execute("CREATE TABLE t (a INT, b CHAR(200)) TABLESPACE ts")
        table = db.table("t")
        t = 0.0
        rids = []
        for i in range(300):
            rid, t = table.insert((i, "x"), t)
            rids.append(rid)
        # update a working set far larger than the buffer: every update
        # forces a miss plus a dirty write-back, filling the region's dies
        for round_no in range(40):
            for i, rid in enumerate(rids):
                rids[i], t = table.update(rid, (round_no, "x"), t)
        region = db.store.region("rg")
        assert region.stats.gc_erases > 0
        assert db.device.total_erase_count() > 0
        db.store.check_consistency()

    def test_tpcc_runs_on_both_placements_with_identical_results(self):
        """The DBMS layers are placement-agnostic: same logical outcome."""
        outcomes = {}
        for placement in (traditional_placement(16), figure2_placement(16)):
            db = Database.on_native_flash(
                geometry=geometry(), placement=placement, buffer_pages=128
            )
            scale = tiny_scale()
            load_database(db, scale, seed=3)
            metrics = Driver(db, scale, terminals=4, seed=3).run(num_transactions=150)
            counts = {
                kind: acc.count for kind, acc in metrics.per_kind.items()
            }
            outcomes[placement.name] = (
                counts,
                db.table("ORDER").row_count,
                db.table("NEW_ORDER").row_count,
                metrics.aborted,
            )
            db.store.check_consistency()
        assert outcomes["traditional"] == outcomes["figure2"]


class TestBlockDeviceStack:
    def test_same_dbms_runs_on_ftl(self):
        db = Database.on_block_device(
            geometry=geometry(), overprovision=0.3, buffer_pages=128
        )
        scale = tiny_scale()
        load_database(db, scale, seed=5)
        metrics = Driver(db, scale, terminals=4, seed=5).run(num_transactions=100)
        assert metrics.transactions == 100
        assert db.ftl.stats.host_writes > 0
        db.ftl.check_consistency()

    def test_dftl_variant(self):
        db = Database.on_block_device(
            geometry=geometry(), ftl="dftl", cmt_entries=16, overprovision=0.3, buffer_pages=32
        )
        db.execute("CREATE TABLE t (a INT, b CHAR(500))")
        table = db.table("t")
        t = 0.0
        for i in range(600):
            __, t = table.insert((i, "p"), t)
        t = db.checkpoint(t)
        assert db.ftl.stats.trans_writes > 0  # limited device RAM was exercised


class TestGlobalWearLevelling:
    def test_wear_divergence_triggers_die_swap_end_to_end(self):
        db = Database.on_native_flash(
            geometry=geometry(), buffer_pages=16, global_wl_threshold=20, flusher_interval=8
        )
        db.execute("CREATE REGION rgHot (DIES=2)")
        db.execute("CREATE REGION rgCold (DIES=2)")
        db.execute("CREATE TABLESPACE tsHot (REGION=rgHot)")
        db.execute("CREATE TABLESPACE tsCold (REGION=rgCold)")
        db.execute("CREATE TABLE hot (a INT, b CHAR(200)) TABLESPACE tsHot")
        db.execute("CREATE TABLE cold (a INT, b CHAR(200)) TABLESPACE tsCold")
        t = 0.0
        cold_table = db.table("cold")
        for i in range(50):
            __, t = cold_table.insert((i, "c"), t)
        t = db.checkpoint(t)
        hot_table = db.table("hot")
        hot_rids = []
        for i in range(200):
            rid, t = hot_table.insert((i, "h"), t)
            hot_rids.append(rid)
        for round_no in range(120):
            for i, rid in enumerate(hot_rids):
                hot_rids[i], t = hot_table.update(rid, (round_no, "h"), t)
        t = db.store.global_wear_level(t)
        assert db.store.manager.wl_swaps >= 1
        # all data still readable
        for __, row, t in cold_table.scan(t):
            assert row[1] == "c"
        db.store.check_consistency()
