"""Determinism regression: fixed-seed mini TPC-C on the FTL, pinned exactly.

A full database stack (buffer manager, heap tables, B-trees) drives a
page-mapping FTL on a deliberately small device, so GC runs repeatedly
under real transactional traffic.  The engine-stats snapshot — erase and
copyback counts, victim valid-page totals, per-die wear and the digest of
the final logical-to-physical mapping — is asserted against values captured
from the seed implementation.

This is the tripwire for future performance work: any "optimisation" that
silently changes victim choice, GC timing or write placement fails here
before it can contaminate the paper's reproduction numbers (Fig. 2/3).
"""

from repro.db import Database
from repro.flash import FlashGeometry, instant_timing
from repro.tpcc import Driver, load_database, tiny_scale
from tests.mapping.equivalence_workloads import engine_snapshot

GOLDEN = {
    "gc_erases": 124,
    "gc_copybacks": 173,
    "gc_reads": 0,
    "gc_programs": 0,
    "gc_victim_valid_pages": 173,
    "wl_moves": 0,
    "wl_erases": 0,
    "erase_counts_per_die": [31, 31, 31, 31],
    "free_blocks_per_die": [3, 3, 3, 3],
    "live_pages": 343,
    "final_at_us": 58470.0,
    "mapping_sha256": "655c1c1fe716fcffe529c293260d03669e8ac12124fc69b7ae5323a6e05db6a4",
    "host_reads": 2677,
    "host_writes": 5314,
}


def small_ftl_geometry():
    """4 dies x 16 blocks: small enough that 600 transactions churn GC."""
    return FlashGeometry(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=32,
        page_size=2048,
        oob_size=64,
        max_pe_cycles=1_000_000,
    )


def test_tpcc_on_ftl_matches_seed_snapshot():
    db = Database.on_block_device(
        geometry=small_ftl_geometry(),
        timing=instant_timing(),
        ftl="page",
        gc_policy="greedy",
        overprovision=0.4,
        buffer_pages=32,
    )
    scale = tiny_scale()
    load_database(db, scale, seed=0)
    Driver(db, scale, terminals=4, seed=13).run(num_transactions=600)

    snapshot = engine_snapshot(db.ftl.engine, db.ftl.device.clock.now)
    snapshot["host_reads"] = db.ftl.stats.host_reads
    snapshot["host_writes"] = db.ftl.stats.host_writes

    # the run must actually have exercised GC to pin anything useful
    assert snapshot["gc_erases"] > 0

    diverged = {
        key: (snapshot[key], want)
        for key, want in GOLDEN.items()
        if snapshot[key] != want
    }
    assert not diverged, f"simulated behaviour changed vs. seed: {diverged}"

    db.ftl.check_consistency()
