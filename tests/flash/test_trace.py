"""Tests for the flash command tracer."""

import pytest

from repro.flash import FlashDevice, PhysicalBlockAddress, PhysicalPageAddress, small_geometry
from repro.flash.trace import FlashTracer, TraceEvent


@pytest.fixture
def device():
    return FlashDevice(small_geometry())


def ppa(die=0, block=0, page=0):
    return PhysicalPageAddress(die, block, page)


class TestAttachment:
    def test_records_all_command_kinds(self, device):
        tracer = FlashTracer.attach(device)
        device.program_page(ppa(), b"x")
        device.read_page(ppa())
        device.read_metadata(ppa())
        device.copyback(ppa(), ppa(0, 1, 0))
        device.erase_block(PhysicalBlockAddress(0, 0))
        ops = [e.op for e in tracer.events]
        assert ops == ["program_page", "read_page", "read_metadata", "copyback", "erase_block"]
        tracer.detach()

    def test_detach_stops_tracing(self, device):
        tracer = FlashTracer.attach(device)
        device.program_page(ppa(), b"x")
        tracer.detach()
        device.read_page(ppa())
        assert len(tracer) == 1

    def test_double_attach_rejected(self, device):
        tracer = FlashTracer.attach(device)
        with pytest.raises(RuntimeError):
            tracer._hook()
        tracer.detach()

    def test_device_results_unchanged(self, device):
        tracer = FlashTracer.attach(device)
        device.program_page(ppa(), b"payload")
        assert device.read_page(ppa()).data == b"payload"
        tracer.detach()


class TestRingBuffer:
    def test_capacity_bounds_and_drop_count(self, device):
        tracer = FlashTracer.attach(device, capacity=3)
        for page in range(5):
            device.program_page(ppa(0, 0, page), b"x")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        tracer.detach()

    def test_eviction_keeps_newest_events(self, device):
        tracer = FlashTracer.attach(device, capacity=3)
        for page in range(7):
            device.program_page(ppa(0, 0, page), b"x")
        # oldest events fall off the front; the last `capacity` survive
        assert [e.page for e in tracer.events] == [4, 5, 6]
        assert tracer.dropped == 4
        tracer.detach()

    def test_invalid_capacity(self, device):
        with pytest.raises(ValueError):
            FlashTracer(device, capacity=0)


class TestQueries:
    def test_event_properties(self):
        event = TraceEvent("read_page", 0, 1, 2, issue_us=100.0, start_us=150.0, end_us=250.0)
        assert event.queue_us == 50.0
        assert event.service_us == 100.0
        assert "d0/b1/p2" in str(event)

    def test_on_die_and_between(self, device):
        tracer = FlashTracer.attach(device)
        device.program_page(ppa(0, 0, 0), b"x", at=0.0)
        device.program_page(ppa(1, 0, 0), b"y", at=0.0)
        assert len(tracer.on_die(0)) == 1
        assert len(tracer.on_die(1)) == 1
        first_end = tracer.events[0].end_us
        assert tracer.between(0.0, first_end) != []
        tracer.detach()

    def test_slowest_orders_by_queue(self, device):
        tracer = FlashTracer.attach(device)
        # two programs to the same die: the second queues
        device.program_page(ppa(0, 0, 0), b"x", at=0.0)
        device.program_page(ppa(0, 0, 1), b"y", at=0.0)
        slowest = tracer.slowest(1)[0]
        assert slowest.page == 1
        assert slowest.queue_us > 0
        tracer.detach()

    def test_snapshot(self, device):
        tracer = FlashTracer.attach(device)
        for page in range(4):
            device.program_page(ppa(0, 0, page), b"x")
        snap = tracer.snapshot()
        assert snap["events"] == 4.0
        assert snap["ops.program_page"] == 4.0
        assert snap["busiest_die"] == 0.0
        tracer.detach()

    def test_empty_snapshot(self, device):
        tracer = FlashTracer(device)
        snap = tracer.snapshot()
        assert snap["events"] == 0.0
        assert snap["busiest_die"] == -1.0
