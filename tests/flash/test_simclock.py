"""Unit tests for the virtual clock and resource timelines."""

import pytest

from repro.flash import ResourceTimeline, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_advance_to_moves_forward_only(self):
        c = SimClock()
        c.advance_to(100.0)
        c.advance_to(50.0)
        assert c.now == 100.0

    def test_advance_by(self):
        c = SimClock(start=10.0)
        c.advance_by(5.0)
        assert c.now == 15.0

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1.0)


class TestResourceTimeline:
    def test_reserve_when_free_starts_immediately(self):
        r = ResourceTimeline()
        start, end = r.reserve(10.0, 5.0)
        assert (start, end) == (10.0, 15.0)

    def test_reserve_queues_behind_prior_reservation(self):
        r = ResourceTimeline()
        r.reserve(0.0, 100.0)
        start, end = r.reserve(10.0, 5.0)
        assert (start, end) == (100.0, 105.0)

    def test_busy_time_accumulates(self):
        r = ResourceTimeline()
        r.reserve(0.0, 30.0)
        r.reserve(0.0, 20.0)
        assert r.busy_us == 50.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ResourceTimeline().reserve(0.0, -1.0)

    def test_peek_start_does_not_reserve(self):
        r = ResourceTimeline()
        r.reserve(0.0, 100.0)
        # instants inside the busy slot are pushed past it; later instants
        # are free — and peeking never changes the timeline
        assert r.peek_start(0.0) == 100.0
        assert r.peek_start(50.0) == 100.0
        assert r.peek_start(150.0) == 150.0
        assert r.available_at == 100.0
        start, __ = r.reserve(0.0, 10.0)
        assert start == 100.0  # a real duration must wait for the gap

    def test_gap_filling_uses_idle_time_before_future_reservations(self):
        r = ResourceTimeline()
        r.reserve(1000.0, 100.0)  # someone reserved far in the future
        start, end = r.reserve(0.0, 50.0)
        assert (start, end) == (0.0, 50.0)  # idle time before it is usable
        start, end = r.reserve(0.0, 2000.0)  # too big for the gap
        assert start == 1100.0

    def test_gap_exact_fit(self):
        r = ResourceTimeline()
        r.reserve(0.0, 100.0)
        r.reserve(200.0, 100.0)
        start, end = r.reserve(0.0, 100.0)
        assert (start, end) == (100.0, 200.0)

    def test_utilization(self):
        r = ResourceTimeline()
        r.reserve(0.0, 25.0)
        assert r.utilization(100.0) == pytest.approx(0.25)
        assert r.utilization(0.0) == 0.0
        assert r.utilization(10.0) == 1.0
