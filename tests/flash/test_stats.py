"""Unit tests for latency accumulators and device statistics."""

import random

import pytest

from repro.flash import FlashStats, LatencyAccumulator


class TestLatencyAccumulator:
    def test_empty(self):
        acc = LatencyAccumulator()
        assert acc.mean_us == 0.0
        assert acc.percentile_us(0.99) == 0.0

    def test_mean_min_max(self):
        acc = LatencyAccumulator()
        for v in (10.0, 20.0, 30.0):
            acc.record(v)
        assert acc.mean_us == pytest.approx(20.0)
        assert acc.min_us == 10.0
        assert acc.max_us == 30.0

    def test_percentiles_approximate_distribution(self):
        rng = random.Random(1)
        acc = LatencyAccumulator()
        samples = sorted(rng.uniform(100, 10_000) for __ in range(5000))
        for v in samples:
            acc.record(v)
        exact_p50 = samples[2500]
        exact_p99 = samples[4950]
        assert acc.percentile_us(0.5) == pytest.approx(exact_p50, rel=0.25)
        assert acc.percentile_us(0.99) == pytest.approx(exact_p99, rel=0.25)
        # conservative: the reported tail never undershoots badly
        assert acc.percentile_us(0.99) >= exact_p99 * 0.85

    def test_percentile_never_exceeds_max(self):
        acc = LatencyAccumulator()
        acc.record(123.0)
        assert acc.percentile_us(1.0) <= 123.0

    def test_heavy_tail_visible(self):
        acc = LatencyAccumulator()
        for __ in range(99):
            acc.record(100.0)
        acc.record(50_000.0)
        assert acc.percentile_us(0.5) < 200.0
        assert acc.percentile_us(0.995) > 10_000.0

    def test_merge(self):
        a, b = LatencyAccumulator(), LatencyAccumulator()
        for v in (10.0, 20.0):
            a.record(v)
        for v in (30.0, 40.0):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.mean_us == pytest.approx(25.0)
        assert a.max_us == 40.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            LatencyAccumulator().percentile_us(0.0)
        with pytest.raises(ValueError):
            LatencyAccumulator().percentile_us(1.5)


class TestFlashStats:
    def test_per_die_counters(self):
        stats = FlashStats(dies=4)
        stats.record_read(2, 4096, 100.0)
        stats.record_program(1, 4096, 500.0)
        stats.record_erase(1)
        stats.record_copyback(3)
        assert stats.reads_per_die == [0, 0, 1, 0]
        assert stats.programs_per_die == [0, 1, 0, 0]
        assert stats.erases_per_die == [0, 1, 0, 0]
        assert stats.copybacks_per_die == [0, 0, 0, 1]

    def test_snapshot_and_delta(self):
        before = FlashStats(dies=2)
        after = FlashStats(dies=2)
        after.record_read(0, 4096, 100.0)
        after.record_program(0, 4096, 500.0)
        delta = after.delta(before)
        assert delta["reads"] == 1
        assert delta["programs"] == 1
        assert delta["bytes_read"] == 4096
