"""Unit tests for the page/block state machines (NAND constraints)."""

import pytest

from repro.flash import BadBlockError, EraseError, ProgramError, ReadError
from repro.flash.block import Block, PageMetadata


def make_block(pages=4, endurance=3):
    return Block(pages_per_block=pages, max_pe_cycles=endurance)


class TestProgramDiscipline:
    def test_sequential_program_and_read(self):
        b = make_block()
        b.program(0, b"a", PageMetadata(lpn=10))
        b.program(1, b"b", None)
        assert b.read(0) == (b"a", b.read(0)[1])
        data, meta = b.read(0)
        assert data == b"a"
        assert meta.lpn == 10

    def test_out_of_order_program_rejected(self):
        b = make_block()
        with pytest.raises(ProgramError):
            b.program(1, b"x", None)

    def test_reprogram_without_erase_rejected(self):
        b = make_block()
        b.program(0, b"x", None)
        with pytest.raises(ProgramError):
            b.program(0, b"y", None)

    def test_write_pointer_advances(self):
        b = make_block()
        assert b.write_pointer == 0
        b.program(0, b"x", None)
        assert b.write_pointer == 1
        assert not b.is_full
        for i in range(1, 4):
            b.program(i, b"x", None)
        assert b.is_full

    def test_read_unprogrammed_page_rejected(self):
        b = make_block()
        with pytest.raises(ReadError):
            b.read(0)


class TestErase:
    def test_erase_resets_pages_and_counts(self):
        b = make_block()
        b.program(0, b"x", None)
        b.erase()
        assert b.is_erased
        assert b.erase_count == 1
        with pytest.raises(ReadError):
            b.read(0)
        b.program(0, b"again", None)  # programmable again from page 0

    def test_wearout_marks_block_bad(self):
        b = make_block(endurance=2)
        b.erase()
        assert not b.is_bad
        b.erase()
        assert b.is_bad

    def test_bad_block_rejects_all_commands(self):
        b = make_block()
        b.mark_bad()
        with pytest.raises(BadBlockError):
            b.program(0, b"x", None)
        with pytest.raises(BadBlockError):
            b.read(0)
        with pytest.raises(EraseError):
            b.erase()


class TestMetadata:
    def test_metadata_roundtrip_defaults(self):
        m = PageMetadata()
        assert m.lpn is None
        assert m.seq == 0
        assert m.extra == {}

    def test_metadata_extra_is_per_instance(self):
        a, b = PageMetadata(), PageMetadata()
        a.extra["k"] = 1
        assert b.extra == {}
