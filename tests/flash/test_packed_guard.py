"""The packed fast-path commands must be unreachable with hooks attached.

The ``*_packed`` device commands skip the fault-injection and event hooks
for speed.  If one were ever reached while a hook is live, scheduled
faults would be silently skipped and events dropped — so the device
refuses with :class:`~repro.flash.errors.PackedPathError`, and the
mapping engine's per-call hot-path check keeps the full stack off the
packed path whenever a hook is attached.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.flash import FlashDevice, PackedPathError, small_geometry


@pytest.fixture
def device():
    return FlashDevice(small_geometry())


def _packed_calls(device):
    return [
        lambda: device.program_page_packed(0, 0, 0, b"x", 1, 1, -1, 0.0),
        lambda: device.copyback_packed(0, 0, 0, 1, 0, 0.0),
        lambda: device.erase_block_packed(0, 1, 0.0),
    ]


class TestPackedGuard:
    def test_packed_allowed_without_hooks(self, device):
        end = device.program_page_packed(0, 0, 0, b"x", 1, 1, -1, 0.0)
        assert end > 0.0
        device.erase_block_packed(0, 1, 0.0)

    def test_packed_rejected_with_fault_injector(self, device):
        device.attach_fault_injector(FaultInjector(FaultPlan()))
        for call in _packed_calls(device):
            with pytest.raises(PackedPathError):
                call()

    def test_packed_rejected_with_event_bus(self, device):
        device.attach_event_bus()
        for call in _packed_calls(device):
            with pytest.raises(PackedPathError):
                call()

    def test_guard_fires_before_any_state_change(self, device):
        device.attach_fault_injector(FaultInjector(FaultPlan()))
        with pytest.raises(PackedPathError):
            device.program_page_packed(0, 0, 0, b"x", 1, 1, -1, 0.0)
        # nothing was programmed and no stats were recorded
        assert device.stats.programs == 0
        assert device.dies[0].blocks[0].write_pointer == 0

    def test_error_names_the_command(self, device):
        device.attach_event_bus()
        with pytest.raises(PackedPathError) as exc:
            device.erase_block_packed(0, 0, 0.0)
        assert exc.value.command == "erase_block_packed"
        assert "erase_block_packed" in str(exc.value)

    def test_engine_routes_off_packed_path_after_attach(self):
        """Attaching an injector mid-run flips the stack to full commands."""
        from repro.core import NoFTLStore, RegionConfig
        from repro.flash import paper_geometry

        store = NoFTLStore.create(paper_geometry(blocks_per_plane=4))
        region = store.create_region(RegionConfig(name="rg"), num_dies=4)
        pages = region.allocate(8)
        t = region.write(pages[0], b"before", 0.0)
        store.device.attach_fault_injector(FaultInjector(FaultPlan()))
        # the guard is live now; writes must route through the full
        # command set and still succeed
        t = region.write(pages[1], b"after", t)
        data, _ = region.read(pages[1], t)
        assert data == b"after"
