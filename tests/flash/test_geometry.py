"""Unit tests for flash geometry arithmetic."""

import pytest

from repro.flash import AddressError, FlashGeometry, paper_geometry, small_geometry


class TestDerivedSizes:
    def test_small_geometry_totals(self):
        g = small_geometry()
        assert g.chips == 2
        assert g.dies == 4
        assert g.blocks_per_die == 4
        assert g.pages_per_die == 64
        assert g.total_pages == 256
        assert g.capacity_bytes == 256 * 512

    def test_paper_geometry_has_64_dies(self):
        g = paper_geometry()
        assert g.dies == 64
        assert g.channels == 4
        assert g.page_size == 4096

    def test_block_and_die_byte_sizes(self):
        g = small_geometry()
        assert g.block_bytes == 16 * 512
        assert g.die_bytes == 4 * 16 * 512

    def test_dies_per_channel(self):
        g = paper_geometry()
        assert g.dies_per_channel * g.channels == g.dies


class TestValidation:
    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            FlashGeometry(channels=0)
        with pytest.raises(ValueError):
            FlashGeometry(pages_per_block=-1)

    def test_rejects_negative_oob(self):
        with pytest.raises(ValueError):
            FlashGeometry(oob_size=-1)

    def test_check_die_raises_out_of_range(self):
        g = small_geometry()
        with pytest.raises(AddressError):
            g.check_die(g.dies)
        with pytest.raises(AddressError):
            g.check_die(-1)

    def test_check_block_and_page(self):
        g = small_geometry()
        g.check_block(0)
        g.check_page(g.pages_per_block - 1)
        with pytest.raises(AddressError):
            g.check_block(g.blocks_per_die)
        with pytest.raises(AddressError):
            g.check_page(g.pages_per_block)


class TestIndexArithmetic:
    def test_die_coordinates_roundtrip(self):
        g = paper_geometry()
        for die in range(g.dies):
            channel, chip, local = g.die_coordinates(die)
            assert g.die_index(channel, chip, local) == die

    def test_channel_of_die_matches_coordinates(self):
        g = paper_geometry()
        for die in range(g.dies):
            assert g.channel_of_die(die) == g.die_coordinates(die)[0]

    def test_die_index_rejects_bad_coordinates(self):
        g = small_geometry()
        with pytest.raises(AddressError):
            g.die_index(g.channels, 0, 0)
        with pytest.raises(AddressError):
            g.die_index(0, g.chips_per_channel, 0)
        with pytest.raises(AddressError):
            g.die_index(0, 0, g.dies_per_chip)

    def test_plane_of_block_interleaves(self):
        g = paper_geometry()
        assert g.plane_of_block(0) == 0
        assert g.plane_of_block(1) == 1
        assert g.plane_of_block(2) == 0

    def test_geometry_is_frozen(self):
        g = small_geometry()
        with pytest.raises(AttributeError):
            g.channels = 8
