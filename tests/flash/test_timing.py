"""Unit tests for the NAND timing model."""

import pytest

from repro.flash import DEFAULT_TIMING, TimingModel, instant_timing


class TestTimingModel:
    def test_defaults_are_slc_class(self):
        assert DEFAULT_TIMING.read_us < DEFAULT_TIMING.program_us < DEFAULT_TIMING.erase_us

    def test_copyback_is_read_plus_program(self):
        t = TimingModel(read_us=100, program_us=400, copyback_overhead_us=5)
        assert t.copyback_us == 505

    def test_bus_scales_with_partial_transfer(self):
        t = TimingModel(bus_us_per_page=100)
        assert t.bus_us(4096, 4096) == 100
        assert t.bus_us(2048, 4096) == 50
        assert t.bus_us(64, 4096) == pytest.approx(100 * 64 / 4096)

    def test_bus_never_exceeds_full_page(self):
        t = TimingModel(bus_us_per_page=100)
        assert t.bus_us(8192, 4096) == 100

    def test_zero_bytes_free(self):
        assert TimingModel().bus_us(0, 4096) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(read_us=-1)
        with pytest.raises(ValueError):
            TimingModel(bus_us_per_page=-0.1)

    def test_instant_timing_is_all_zero(self):
        t = instant_timing()
        assert t.read_us == t.program_us == t.erase_us == 0.0
        assert t.copyback_us == 0.0

    def test_oob_read_cheaper_than_page_read(self):
        """The recovery scan's economics: OOB transfers are tiny."""
        t = DEFAULT_TIMING
        full = t.read_us + t.bus_us(4096, 4096)
        oob = t.read_us + t.bus_us(128, 4096)
        assert oob < full
