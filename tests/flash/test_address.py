"""Unit tests for physical address packing and validation."""

import pytest

from repro.flash import AddressError, PhysicalBlockAddress, PhysicalPageAddress, small_geometry


class TestPhysicalPageAddress:
    def test_to_int_roundtrip_every_page(self):
        g = small_geometry()
        seen = set()
        for die in range(g.dies):
            for block in range(g.blocks_per_die):
                for page in range(g.pages_per_block):
                    ppa = PhysicalPageAddress(die, block, page)
                    packed = ppa.to_int(g)
                    seen.add(packed)
                    assert PhysicalPageAddress.from_int(packed, g) == ppa
        assert seen == set(range(g.total_pages))

    def test_validate_rejects_out_of_range(self):
        g = small_geometry()
        with pytest.raises(AddressError):
            PhysicalPageAddress(g.dies, 0, 0).validate(g)
        with pytest.raises(AddressError):
            PhysicalPageAddress(0, g.blocks_per_die, 0).validate(g)
        with pytest.raises(AddressError):
            PhysicalPageAddress(0, 0, g.pages_per_block).validate(g)

    def test_from_int_rejects_out_of_range(self):
        g = small_geometry()
        with pytest.raises(ValueError):
            PhysicalPageAddress.from_int(g.total_pages, g)
        with pytest.raises(ValueError):
            PhysicalPageAddress.from_int(-1, g)

    def test_block_address(self):
        ppa = PhysicalPageAddress(1, 2, 3)
        assert ppa.block_address() == PhysicalBlockAddress(1, 2)

    def test_ordering_is_lexicographic(self):
        assert PhysicalPageAddress(0, 1, 5) < PhysicalPageAddress(1, 0, 0)
        assert PhysicalPageAddress(1, 0, 0) < PhysicalPageAddress(1, 0, 1)

    def test_hashable(self):
        assert len({PhysicalPageAddress(0, 0, 0), PhysicalPageAddress(0, 0, 0)}) == 1


class TestPhysicalBlockAddress:
    def test_to_int_roundtrip(self):
        g = small_geometry()
        for die in range(g.dies):
            for block in range(g.blocks_per_die):
                pba = PhysicalBlockAddress(die, block)
                assert PhysicalBlockAddress.from_int(pba.to_int(g), g) == pba

    def test_page_accessor(self):
        pba = PhysicalBlockAddress(2, 3)
        assert pba.page(7) == PhysicalPageAddress(2, 3, 7)

    def test_from_int_rejects_out_of_range(self):
        g = small_geometry()
        with pytest.raises(ValueError):
            PhysicalBlockAddress.from_int(g.total_blocks, g)

    def test_str_forms(self):
        assert "d1" in str(PhysicalPageAddress(1, 2, 3))
        assert "b2" in str(PhysicalBlockAddress(1, 2))
