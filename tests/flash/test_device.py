"""Unit tests for the native flash device: commands, timing, contention."""

import pytest

from repro.flash import (
    CopybackError,
    DataError,
    FlashDevice,
    PageMetadata,
    PhysicalBlockAddress,
    PhysicalPageAddress,
    TimingModel,
    small_geometry,
)


@pytest.fixture
def device():
    return FlashDevice(small_geometry())


def ppa(die=0, block=0, page=0):
    return PhysicalPageAddress(die, block, page)


class TestBasicCommands:
    def test_program_then_read_roundtrip(self, device):
        meta = PageMetadata(lpn=42, seq=1)
        device.program_page(ppa(), b"hello", meta)
        result = device.read_page(ppa())
        assert result.data == b"hello"
        assert result.metadata.lpn == 42

    def test_read_metadata_returns_oob_only(self, device):
        device.program_page(ppa(), b"hello", PageMetadata(lpn=7))
        result = device.read_metadata(ppa())
        assert result.data is None
        assert result.metadata.lpn == 7

    def test_oversized_payload_rejected(self, device):
        big = b"x" * (device.geometry.page_size + 1)
        with pytest.raises(DataError):
            device.program_page(ppa(), big)

    def test_non_bytes_payload_rejected(self, device):
        with pytest.raises(DataError):
            device.program_page(ppa(), "not bytes")

    def test_erase_then_reprogram(self, device):
        device.program_page(ppa(), b"one")
        device.erase_block(PhysicalBlockAddress(0, 0))
        device.program_page(ppa(), b"two")
        assert device.read_page(ppa()).data == b"two"

    def test_stats_count_commands(self, device):
        device.program_page(ppa(), b"x")
        device.read_page(ppa())
        device.erase_block(PhysicalBlockAddress(0, 0))
        assert device.stats.programs == 1
        assert device.stats.reads == 1
        assert device.stats.erases == 1


class TestCopyback:
    def test_copyback_moves_data_on_die(self, device):
        device.program_page(ppa(0, 0, 0), b"payload", PageMetadata(lpn=5))
        device.copyback(ppa(0, 0, 0), ppa(0, 1, 0))
        result = device.read_page(ppa(0, 1, 0))
        assert result.data == b"payload"
        assert result.metadata.lpn == 5
        assert device.stats.copybacks == 1

    def test_copyback_can_refresh_metadata(self, device):
        device.program_page(ppa(0, 0, 0), b"p", PageMetadata(lpn=5, seq=1))
        device.copyback(ppa(0, 0, 0), ppa(0, 1, 0), metadata=PageMetadata(lpn=5, seq=9))
        assert device.read_page(ppa(0, 1, 0)).metadata.seq == 9

    def test_cross_die_copyback_rejected(self, device):
        device.program_page(ppa(0, 0, 0), b"p")
        with pytest.raises(CopybackError):
            device.copyback(ppa(0, 0, 0), ppa(1, 0, 0))

    def test_strict_plane_copyback(self):
        geometry = small_geometry()
        # small geometry has 1 plane per die, so use a 2-plane variant
        from dataclasses import replace

        geometry = replace(geometry, planes_per_die=2)
        device = FlashDevice(geometry, strict_plane_copyback=True)
        device.program_page(ppa(0, 0, 0), b"p")
        with pytest.raises(CopybackError):
            device.copyback(ppa(0, 0, 0), ppa(0, 1, 0))  # plane 0 -> plane 1
        device.copyback(ppa(0, 0, 0), ppa(0, 2, 0))  # plane 0 -> plane 0


class TestTimingAndContention:
    def test_read_latency_includes_array_and_bus(self):
        t = TimingModel(read_us=100, program_us=0, erase_us=0, bus_us_per_page=10)
        device = FlashDevice(small_geometry(), timing=t)
        device.program_page(ppa(), b"x", at=0.0)
        start = device.clock.now
        result = device.read_page(ppa(), at=start)
        assert result.end_us == pytest.approx(start + 110)

    def test_same_die_ops_serialize(self):
        t = TimingModel(read_us=100, program_us=100, erase_us=0, bus_us_per_page=0)
        device = FlashDevice(small_geometry(), timing=t)
        device.program_page(ppa(0, 0, 0), b"a", at=0.0)
        device.program_page(ppa(0, 0, 1), b"b", at=0.0)
        r1 = device.read_page(ppa(0, 0, 0), at=300.0)
        r2 = device.read_page(ppa(0, 0, 1), at=300.0)  # queued behind r1
        assert r2.end_us == pytest.approx(r1.end_us + 100)

    def test_different_dies_run_in_parallel(self):
        t = TimingModel(read_us=100, program_us=100, erase_us=0, bus_us_per_page=0)
        device = FlashDevice(small_geometry(), timing=t)
        device.program_page(ppa(0, 0, 0), b"a", at=0.0)
        device.program_page(ppa(2, 0, 0), b"b", at=0.0)  # die 2 is on channel 1
        r1 = device.read_page(ppa(0, 0, 0), at=500.0)
        r2 = device.read_page(ppa(2, 0, 0), at=500.0)
        assert r1.end_us == pytest.approx(600)
        assert r2.end_us == pytest.approx(600)

    def test_channel_is_shared_between_dies(self):
        # dies 0 and 1 share channel 0 in small_geometry
        t = TimingModel(read_us=0, program_us=0, erase_us=0, bus_us_per_page=50)
        device = FlashDevice(small_geometry(), timing=t)
        r1 = device.program_page(ppa(0, 0, 0), b"a", at=0.0)
        r2 = device.program_page(ppa(1, 0, 0), b"b", at=0.0)
        assert r1.end_us == pytest.approx(50)
        assert r2.end_us == pytest.approx(100)

    def test_erase_does_not_use_channel(self):
        t = TimingModel(read_us=0, program_us=0, erase_us=100, bus_us_per_page=50)
        device = FlashDevice(small_geometry(), timing=t)
        device.erase_block(PhysicalBlockAddress(0, 0), at=0.0)
        assert device.channels[0].busy_us == 0.0

    def test_copyback_does_not_use_channel(self):
        t = TimingModel(read_us=10, program_us=10, erase_us=0, bus_us_per_page=50)
        device = FlashDevice(small_geometry(), timing=t)
        device.program_page(ppa(0, 0, 0), b"a", at=0.0)
        before = device.channels[0].busy_us
        device.copyback(ppa(0, 0, 0), ppa(0, 1, 0))
        assert device.channels[0].busy_us == before

    def test_clock_tracks_completion(self, device):
        device.program_page(ppa(), b"x", at=0.0)
        assert device.clock.now > 0


class TestWearAndBadBlocks:
    def test_initial_bad_blocks_deterministic(self):
        g = small_geometry()
        d1 = FlashDevice(g, initial_bad_block_rate=0.25, seed=7)
        d2 = FlashDevice(g, initial_bad_block_rate=0.25, seed=7)
        bad1 = [b.is_bad for die in d1.dies for b in die.blocks]
        bad2 = [b.is_bad for die in d2.dies for b in die.blocks]
        assert bad1 == bad2
        assert any(bad1)

    def test_erase_counts_reporting(self, device):
        device.erase_block(PhysicalBlockAddress(0, 0))
        device.erase_block(PhysicalBlockAddress(0, 0))
        device.erase_block(PhysicalBlockAddress(1, 2))
        assert device.max_erase_count() == 2
        assert device.total_erase_count() == 3
        counts = device.erase_counts()
        assert counts[0][0] == 2
        assert counts[1][2] == 1

    def test_utilization_reporting(self):
        t = TimingModel(read_us=100, program_us=0, erase_us=0, bus_us_per_page=0)
        device = FlashDevice(small_geometry(), timing=t)
        device.program_page(ppa(), b"x", at=0.0)
        device.read_page(ppa(), at=device.clock.now)
        utils = device.die_utilizations()
        assert utils[0] > 0
        assert utils[3] == 0
