"""Tests for multi-plane flash operations."""

import pytest

from repro.flash import (
    CopybackError,
    DataError,
    FlashDevice,
    FlashGeometry,
    PhysicalPageAddress,
    TimingModel,
)


def make_device(**timing):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=8,
        page_size=512,
        oob_size=16,
        max_pe_cycles=1000,
    )
    defaults = dict(read_us=100, program_us=500, erase_us=0, bus_us_per_page=50)
    defaults.update(timing)
    return FlashDevice(geometry, timing=TimingModel(**defaults))


def plane_pages(device):
    """One fresh page in each plane of die 0 (blocks 0 and 1)."""
    return [PhysicalPageAddress(0, 0, 0), PhysicalPageAddress(0, 1, 0)]


class TestMultiPlaneProgram:
    def test_programs_both_planes(self):
        device = make_device()
        device.program_multi_plane(plane_pages(device), [b"a", b"b"])
        assert device.read_page(PhysicalPageAddress(0, 0, 0)).data == b"a"
        assert device.read_page(PhysicalPageAddress(0, 1, 0)).data == b"b"
        assert device.stats.programs == 2

    def test_array_phase_paid_once(self):
        device = make_device()
        result = device.program_multi_plane(plane_pages(device), [b"a", b"b"], at=0.0)
        # 2 transfers (50 each) + ONE program (500) = 600
        assert result.end_us == pytest.approx(600)

    def test_sequential_would_cost_more(self):
        sequential = make_device()
        t = sequential.program_page(PhysicalPageAddress(0, 0, 0), b"a", at=0.0).end_us
        t = sequential.program_page(PhysicalPageAddress(0, 1, 0), b"b", at=t).end_us
        multi = make_device()
        m = multi.program_multi_plane(plane_pages(multi), [b"a", b"b"], at=0.0).end_us
        assert m < t

    def test_same_plane_rejected(self):
        device = make_device()
        pages = [PhysicalPageAddress(0, 0, 0), PhysicalPageAddress(0, 2, 0)]  # both plane 0
        with pytest.raises(DataError):
            device.program_multi_plane(pages, [b"a", b"b"])

    def test_cross_die_rejected(self):
        device = make_device()
        pages = [PhysicalPageAddress(0, 0, 0), PhysicalPageAddress(1, 1, 0)]
        with pytest.raises(CopybackError):
            device.program_multi_plane(pages, [b"a", b"b"])

    def test_arity_mismatch_rejected(self):
        device = make_device()
        with pytest.raises(DataError):
            device.program_multi_plane(plane_pages(device), [b"only-one"])

    def test_empty_rejected(self):
        device = make_device()
        with pytest.raises(DataError):
            device.program_multi_plane([], [])


class TestMultiPlaneRead:
    def test_reads_both_planes(self):
        device = make_device()
        device.program_multi_plane(plane_pages(device), [b"x", b"y"])
        results = device.read_multi_plane(plane_pages(device))
        assert [r.data for r in results] == [b"x", b"y"]

    def test_array_read_paid_once(self):
        device = make_device()
        device.program_multi_plane(plane_pages(device), [b"x", b"y"], at=0.0)
        t = device.clock.now
        results = device.read_multi_plane(plane_pages(device), at=t)
        # one array read (100) + two transfers (50 each)
        assert results[-1].end_us == pytest.approx(t + 200)

    def test_same_plane_rejected(self):
        device = make_device()
        pages = [PhysicalPageAddress(0, 0, 0), PhysicalPageAddress(0, 2, 0)]
        with pytest.raises(DataError):
            device.read_multi_plane(pages)
