"""Figure 3 metrics round-trip: the JSON document equals the printed table.

Runs a miniature version of ``repro fig3`` (two placements, tiny scale),
serializes the ``repro.obs/v1`` document through JSON, and checks every
Figure 3 cell and per-region counter against the in-memory results the
table is rendered from.
"""

import json

import pytest

from repro.bench import (
    FIGURE3_ROWS,
    TPCCExperimentConfig,
    figure3_metrics_doc,
    figure3_table,
    render_metrics_doc,
    run_tpcc_experiment,
)
from repro.core import figure2_placement, traditional_placement
from repro.flash import FlashGeometry
from repro.obs import validate_metrics_doc
from repro.tpcc import tiny_scale


def _geometry():
    return FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=48,
        pages_per_block=32,
        page_size=2048,
        oob_size=64,
        max_pe_cycles=1_000_000,
    )


@pytest.fixture(scope="module")
def results():
    config = TPCCExperimentConfig(
        name="base",
        geometry=_geometry(),
        scale=tiny_scale(),
        num_transactions=120,
        terminals=4,
        buffer_pages=64,
    )
    from dataclasses import replace

    traditional = run_tpcc_experiment(
        replace(config, name="traditional", placement=traditional_placement(16))
    )
    regions = run_tpcc_experiment(
        replace(config, name="regions", placement=figure2_placement(16))
    )
    return traditional, regions


@pytest.fixture(scope="module")
def doc(results):
    raw = figure3_metrics_doc(*results)
    # genuine round-trip: what a file consumer reads back
    return json.loads(json.dumps(raw))


class TestRoundTrip:
    def test_document_validates(self, doc):
        validate_metrics_doc(doc)
        assert doc["command"] == "fig3"
        assert sorted(doc["configs"]) == ["regions", "traditional"]

    def test_figure3_section_matches_table_cells(self, results, doc):
        for result in results:
            section = doc["configs"][result.config.name]["figure3"]
            for __, key, __ in FIGURE3_ROWS:
                assert section[key] == result.row(key), key

    def test_per_region_counters_match(self, results, doc):
        for result in results:
            section = doc["configs"][result.config.name].get("regions", {})
            assert sorted(section) == sorted(result.per_region)
            for name, counters in result.per_region.items():
                assert section[name] == counters

    def test_registry_totals_consistent_with_device(self, results, doc):
        # end-of-run registry totals can never undercut the window deltas
        for result in results:
            registry = doc["configs"][result.config.name]["registry"]
            assert registry["flash.erases"] >= result.device["flash_erases"]
            assert registry["mgmt.host_writes"] >= result.row("host_writes")

    def test_report_rendering_equals_live_table(self, results, doc):
        live = figure3_table(*results)
        rendered = render_metrics_doc(doc)
        # same cells in both: every table line of the live render appears
        for line in live.splitlines()[4:-1]:  # skip title/frame differences
            cells = line.split()[-3:]
            assert any(
                all(cell in rline for cell in cells)
                for rline in rendered.splitlines()
            ), line
