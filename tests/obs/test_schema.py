"""Schema pinning: the snapshot key namespace and the metrics envelope.

These tests are the compatibility contract for machine consumers of
``--json`` / ``--metrics-out`` output: root namespaces and the headline
keys under them must not drift silently.
"""

import pytest

from repro.db import Database
from repro.flash import FlashGeometry, small_geometry
from repro.obs import (
    ROOT_NAMESPACES,
    SCHEMA_VERSION,
    SchemaError,
    dump_json,
    metrics_doc,
    validate_metrics_doc,
    validate_snapshot,
)


def _native_db():
    return Database.on_native_flash(geometry=small_geometry(), buffer_pages=16)


class TestPinnedNamespaces:
    def test_root_namespaces_are_pinned(self):
        assert ROOT_NAMESPACES == (
            "flash", "mgmt", "region", "db", "trace", "workload", "faults"
        )

    def test_schema_version_is_pinned(self):
        assert SCHEMA_VERSION == "repro.obs/v1"

    def test_native_db_snapshot_covers_every_layer(self):
        db = _native_db()
        snap = db.metrics_registry().snapshot()
        validate_snapshot(snap)
        for key in (
            "flash.erases",
            "flash.programs",
            "mgmt.gc_copybacks",
            # pinned by the counters.doc-coverage lint fix: gc_programs was
            # mutated by the engine but missing from the snapshot payload
            "mgmt.gc_programs",
            "mgmt.host_writes",
            "db.buffer.hits",
            "region.rgSystem.host_writes",
        ):
            assert key in snap, f"pinned key {key} missing from snapshot"

    def test_ftl_db_snapshot_covers_every_layer(self):
        db = Database.on_block_device(
            geometry=FlashGeometry(
                channels=2, chips_per_channel=2, dies_per_chip=1, planes_per_die=1,
                blocks_per_plane=16, pages_per_block=32, page_size=2048, oob_size=64,
            ),
            overprovision=0.4,
            buffer_pages=16,
        )
        snap = db.metrics_registry().snapshot()
        validate_snapshot(snap)
        for key in ("flash.erases", "mgmt.gc_copybacks", "mgmt.trans_reads", "db.buffer.hits"):
            assert key in snap

    def test_trace_namespace_appears_once_bus_attached(self):
        db = _native_db()
        db.attach_event_bus()
        snap = db.metrics_registry().snapshot()
        assert "trace.events" in snap
        validate_snapshot(snap)


class TestValidateSnapshot:
    def test_rejects_unknown_root(self):
        with pytest.raises(SchemaError, match="outside pinned roots"):
            validate_snapshot({"bogus.key": 1.0})

    def test_rejects_non_numeric_and_bool(self):
        with pytest.raises(SchemaError):
            validate_snapshot({"flash.erases": "3"})
        with pytest.raises(SchemaError):
            validate_snapshot({"flash.erases": True})

    def test_rejects_bad_grammar(self):
        with pytest.raises(Exception):
            validate_snapshot({"flash..erases": 1.0})


class TestValidateMetricsDoc:
    def _doc(self):
        return metrics_doc("fig3", {"traditional": {"figure3": {"tps": 100.0}}})

    def test_valid_doc_passes_and_serializes(self):
        doc = self._doc()
        assert validate_metrics_doc(doc) is doc
        assert '"schema": "repro.obs/v1"' in dump_json(doc)

    def test_rejects_wrong_schema_tag(self):
        doc = self._doc()
        doc["schema"] = "repro.obs/v2"
        with pytest.raises(SchemaError, match="unsupported schema"):
            validate_metrics_doc(doc)

    def test_rejects_missing_configs(self):
        with pytest.raises(SchemaError):
            validate_metrics_doc({"schema": SCHEMA_VERSION, "command": "x", "configs": {}})

    def test_rejects_non_numeric_leaf(self):
        doc = metrics_doc("x", {"a": {"s": {"v": "not-a-number"}}})
        with pytest.raises(SchemaError):
            validate_metrics_doc(doc)

    def test_registry_section_checked_against_roots(self):
        doc = metrics_doc("x", {"a": {"registry": {"bogus.key": 1.0}}})
        with pytest.raises(SchemaError, match="outside pinned roots"):
            validate_metrics_doc(doc)
