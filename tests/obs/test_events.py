"""Unit tests for the cross-layer event bus: ring buffer, filters, JSONL."""

import io
import json

import pytest

from repro.flash import FlashDevice, PhysicalPageAddress, small_geometry
from repro.obs import EventBus, ObsEvent, write_jsonl


class TestEmit:
    def test_records_layer_kind_attrs(self):
        bus = EventBus()
        bus.emit(10.0, "host", "write", region="rgHot", rpn=3)
        [event] = bus.events
        assert (event.ts_us, event.layer, event.kind) == (10.0, "host", "write")
        assert event.attrs == {"region": "rgHot", "rpn": 3}

    def test_rejects_unknown_layer(self):
        with pytest.raises(ValueError):
            EventBus().emit(0.0, "kernel", "boom")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)


class TestRingBuffer:
    def test_eviction_keeps_newest_and_counts_drops(self):
        bus = EventBus(capacity=3)
        for i in range(7):
            bus.emit(float(i), "flash", "program_page", page=i)
        assert len(bus) == 3
        assert bus.dropped == 4
        # the last `capacity` events survive, oldest first
        assert [e.attrs["page"] for e in bus.events] == [4, 5, 6]

    def test_dropped_events_still_counted_in_snapshot(self):
        bus = EventBus(capacity=2)
        for i in range(5):
            bus.emit(float(i), "flash", "erase_block")
        snap = bus.snapshot()
        assert snap["events"] == 2.0
        assert snap["dropped"] == 3.0
        assert snap["flash.erase_block"] == 2.0


class TestSubscribers:
    def test_subscriber_sees_live_events_until_unsubscribed(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit(1.0, "host", "read")
        unsubscribe()
        bus.emit(2.0, "host", "read")
        assert [e.ts_us for e in seen] == [1.0]


class TestQueries:
    def setup_method(self):
        self.bus = EventBus()
        self.bus.emit(1.0, "host", "write", region="rgHot")
        self.bus.emit(2.0, "mapping", "gc_collect", die=0)
        self.bus.emit(3.0, "flash", "program_page", die=0)
        self.bus.emit(4.0, "flash", "program_page", die=1)

    def test_between(self):
        assert [e.kind for e in self.bus.between(2.0, 3.0)] == ["gc_collect", "program_page"]

    def test_by_layer(self):
        assert len(self.bus.by_layer("flash")) == 2

    def test_matching_on_attrs(self):
        assert len(self.bus.matching(layer="flash", die=0)) == 1
        assert len(self.bus.matching(kind="program_page")) == 2


class TestJsonl:
    def test_round_trips_through_json_lines(self):
        bus = EventBus()
        bus.emit(5.0, "mapping", "gc_collect", die=1, block=2, valid_pages=3)
        bus.emit(6.0, "flash", "erase_block", die=1, block=2)
        out = io.StringIO()
        assert bus.to_jsonl(out) == 2
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        assert lines[0] == {
            "ts_us": 5.0, "layer": "mapping", "kind": "gc_collect",
            "block": 2, "die": 1, "valid_pages": 3,
        }
        assert lines[1]["kind"] == "erase_block"

    def test_write_jsonl_on_plain_iterable(self):
        out = io.StringIO()
        assert write_jsonl([ObsEvent(1.0, "host", "read", {})], out) == 1
        assert json.loads(out.getvalue())["layer"] == "host"


class TestDeviceIntegration:
    def test_attach_event_bus_captures_native_commands(self):
        device = FlashDevice(small_geometry())
        bus = device.attach_event_bus()
        assert device.attach_event_bus() is bus  # idempotent
        device.program_page(PhysicalPageAddress(0, 0, 0), b"x")
        device.read_page(PhysicalPageAddress(0, 0, 0))
        kinds = [e.kind for e in bus.by_layer("flash")]
        assert kinds == ["program_page", "read_page"]
        assert bus.events[0].attrs["die"] == 0

    def test_no_bus_attached_means_no_events(self):
        device = FlashDevice(small_geometry())
        assert device.events is None
        device.program_page(PhysicalPageAddress(0, 0, 0), b"x")  # must not raise
