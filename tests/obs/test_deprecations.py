"""The deprecated observability surfaces still work, and warn."""

import importlib
import sys

import pytest

from repro.flash import FlashDevice, small_geometry
from repro.flash.trace import FlashTracer


class TestFtlStatsShim:
    def test_import_warns_and_aliases_management_stats(self):
        sys.modules.pop("repro.ftl.stats", None)
        with pytest.warns(DeprecationWarning, match="repro.ftl.stats is deprecated"):
            module = importlib.import_module("repro.ftl.stats")
        from repro.mapping.stats import ManagementStats

        assert module.ManagementStats is ManagementStats

    def test_package_import_does_not_warn(self, recwarn):
        sys.modules.pop("repro.ftl", None)
        importlib.import_module("repro.ftl")
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestTracerSummaryShim:
    def test_summary_warns_and_delegates(self):
        tracer = FlashTracer(FlashDevice(small_geometry()))
        with pytest.warns(DeprecationWarning, match="FlashTracer.snapshot"):
            summary = tracer.summary()
        assert summary["events"] == 0
        assert summary["busiest_die"] is None

    def test_snapshot_does_not_warn(self, recwarn):
        tracer = FlashTracer(FlashDevice(small_geometry()))
        tracer.snapshot()
        assert not [w for w in recwarn if w.category is DeprecationWarning]
