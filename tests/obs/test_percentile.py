"""Accuracy bound for the log-bucketed percentile estimator.

The histogram's buckets grow by 10^(1/10) ~ 1.259x per step, and
``percentile_us`` returns the upper bound of the bucket holding the
requested rank — so the estimate never undershoots the exact sample
percentile and overshoots by at most one bucket ratio (~+26%, i.e. the
documented ~±12% value resolution around the bucket midpoint).
"""

import random

import pytest

from repro.flash.stats import LatencyAccumulator

#: one bucket step: the worst-case over-estimation factor
BUCKET_RATIO = 10 ** 0.1


def exact_percentile(samples, fraction):
    import math

    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered) - 1e-9))
    return ordered[rank - 1]


@pytest.mark.parametrize("fraction", [0.50, 0.90, 0.99])
@pytest.mark.parametrize("seed", [1, 7, 42])
def test_percentile_within_one_bucket_of_exact(fraction, seed):
    rng = random.Random(seed)
    acc = LatencyAccumulator()
    samples = [rng.lognormvariate(5.0, 1.2) for __ in range(5000)]
    for s in samples:
        acc.record(s)
    approx = acc.percentile_us(fraction)
    exact = exact_percentile(samples, fraction)
    assert approx >= exact * (1 - 1e-9), "estimator must never undershoot the tail"
    assert approx <= exact * BUCKET_RATIO * (1 + 1e-9), (
        f"p{fraction:.0%}: approx {approx:.1f} vs exact {exact:.1f} "
        f"exceeds one bucket ratio"
    )


def test_percentile_capped_at_observed_max():
    acc = LatencyAccumulator()
    for value in (10.0, 11.0, 12.0):
        acc.record(value)
    assert acc.percentile_us(1.0) <= 12.0 * (1 + 1e-9)


def test_empty_and_invalid_fraction():
    acc = LatencyAccumulator()
    assert acc.percentile_us(0.99) == 0.0
    with pytest.raises(ValueError):
        acc.percentile_us(0.0)
    with pytest.raises(ValueError):
        acc.percentile_us(1.5)
