"""Unit tests for the central metric registry and its key grammar."""

import pytest

from repro.obs import (
    MetricKeyError,
    MetricRegistry,
    Snapshottable,
    check_key,
    prefixed,
)


class TestKeyGrammar:
    def test_accepts_dotted_identifiers(self):
        for key in ("flash.erases", "region.rgHot.host_writes", "a", "a1._x"):
            assert check_key(key) == key

    def test_rejects_malformed_keys(self):
        for key in ("", ".", "a..b", "a.", ".a", "a b", "a-b", "a/b"):
            with pytest.raises(MetricKeyError):
                check_key(key)

    def test_prefixed_joins_with_dots(self):
        assert prefixed("flash", {"erases": 3.0}) == {"flash.erases": 3.0}


class TestOwnedInstruments:
    def test_counter_increments(self):
        registry = MetricRegistry()
        counter = registry.counter("workload.commits")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot() == {"workload.commits": 5.0}

    def test_counter_is_get_or_create(self):
        registry = MetricRegistry()
        assert registry.counter("workload.aborts") is registry.counter("workload.aborts")

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("workload.x").inc(-1)

    def test_gauge_reads_live(self):
        registry = MetricRegistry()
        box = {"value": 1.0}
        registry.gauge("db.buffer.buffered_pages", lambda: box["value"])
        assert registry.snapshot()["db.buffer.buffered_pages"] == 1.0
        box["value"] = 7.0
        assert registry.snapshot()["db.buffer.buffered_pages"] == 7.0

    def test_histogram_expands_to_suffixed_keys(self):
        registry = MetricRegistry()
        histogram = registry.histogram("workload.txn_latency")
        histogram.record(100.0)
        histogram.record(300.0)
        snap = registry.snapshot()
        assert snap["workload.txn_latency.count"] == 2.0
        assert snap["workload.txn_latency.mean_us"] == 200.0
        assert snap["workload.txn_latency.max_us"] == 300.0

    def test_duplicate_owned_key_rejected(self):
        registry = MetricRegistry()
        registry.gauge("flash.x", lambda: 0.0)
        with pytest.raises(MetricKeyError):
            registry.counter("flash.x")


class TestSources:
    class FakeStats:
        def snapshot(self):
            return {"hits": 3.0, "misses": 1.0}

    def test_source_is_snapshottable(self):
        assert isinstance(self.FakeStats(), Snapshottable)

    def test_mounted_source_is_namespaced(self):
        registry = MetricRegistry()
        registry.register_source("db.buffer", self.FakeStats())
        snap = registry.snapshot()
        assert snap == {"db.buffer.hits": 3.0, "db.buffer.misses": 1.0}

    def test_callable_source(self):
        registry = MetricRegistry()
        registry.register_source("mgmt", lambda: {"gc_erases": 2.0})
        assert registry.snapshot() == {"mgmt.gc_erases": 2.0}

    def test_duplicate_prefix_rejected(self):
        registry = MetricRegistry()
        registry.register_source("db.buffer", self.FakeStats())
        with pytest.raises(MetricKeyError):
            registry.register_source("db.buffer", self.FakeStats())

    def test_unregister_and_prefixes(self):
        registry = MetricRegistry()
        registry.register_source("db.buffer", self.FakeStats())
        assert registry.source_prefixes() == ["db.buffer"]
        registry.unregister("db.buffer")
        assert registry.source_prefixes() == []
        assert registry.snapshot() == {}

    def test_collision_between_source_and_counter(self):
        registry = MetricRegistry()
        registry.counter("db.buffer.hits")
        registry.register_source("db.buffer", self.FakeStats())
        with pytest.raises(MetricKeyError):
            registry.snapshot()


class TestSnapshot:
    def test_sorted_deterministic_order(self):
        registry = MetricRegistry()
        registry.counter("workload.z").inc()
        registry.counter("flash.a").inc()
        registry.register_source("mgmt", lambda: {"m": 1.0})
        assert list(registry.snapshot()) == ["flash.a", "mgmt.m", "workload.z"]

    def test_namespaces(self):
        registry = MetricRegistry()
        registry.counter("flash.erases")
        registry.counter("mgmt.gc_erases")
        assert registry.namespaces() == ["flash", "mgmt"]
