"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import validate_metrics_doc


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["fig2", "--dies", "16"],
            ["fig3", "--transactions", "100"],
            ["hotcold", "--writes", "500"],
            ["ftl", "--writes", "500"],
            ["recover", "--writes", "200"],
            ["chaos", "--plans", "5", "--seed", "3", "--intensity", "medium"],
            ["report", "some.json", "--validate"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_every_command_accepts_json_flag(self):
        parser = build_parser()
        for argv in (
            ["info", "--json"],
            ["fig2", "--json"],
            ["fig3", "--json"],
            ["hotcold", "--json"],
            ["ftl", "--json"],
            ["recover", "--json"],
            ["chaos", "--json"],
            ["report", "some.json", "--json"],
        ):
            assert parser.parse_args(argv).json is True

    def test_metrics_out_on_experiment_commands(self):
        parser = build_parser()
        for cmd in ("fig3", "hotcold", "ftl", "chaos"):
            args = parser.parse_args([cmd, "--metrics-out", "out.json"])
            assert args.metrics_out == "out.json"

    def test_supervision_flags_on_sharded_commands(self):
        parser = build_parser()
        for cmd in ("fig3", "hotcold", "ftl", "chaos"):
            args = parser.parse_args([
                cmd, "--shards", "2", "--shard-timeout", "30",
                "--shard-retries", "2", "--allow-degraded",
            ])
            assert args.shards == 2
            assert args.shard_timeout == 30.0
            assert args.shard_retries == 2
            assert args.allow_degraded is True

    def test_supervision_defaults(self):
        args = build_parser().parse_args(["hotcold"])
        assert args.shard_timeout is None
        assert args.shard_retries == 1
        assert args.allow_degraded is False


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "64 dies" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "rgStock" in out
        assert "29" in out

    def test_hotcold_small(self, capsys):
        assert main(["hotcold", "--writes", "2000"]) == 0
        out = capsys.readouterr().out
        assert "separated" in out

    def test_ftl_small(self, capsys):
        assert main(["ftl", "--writes", "1500"]) == 0
        out = capsys.readouterr().out
        assert "noftl-regions" in out

    def test_recover_small(self, capsys):
        assert main(["recover", "--writes", "600"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "verified" in out

    def test_chaos_small(self, capsys):
        assert main(["chaos", "--plans", "2", "--seed", "7",
                     "--transactions", "60"]) == 0
        out = capsys.readouterr().out
        assert "plan_000" in out
        assert "control (no-plan bit-identity): ok" in out
        assert "all recovery invariants held" in out

    def test_chaos_json_validates_and_carries_verdicts(self, capsys):
        assert main(["chaos", "--plans", "2", "--seed", "7",
                     "--transactions", "60", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_metrics_doc(doc)
        assert doc["command"] == "chaos"
        assert doc["chaos"]["ok"] is True
        assert doc["configs"]["plan_000"]["summary"]["ok"] == 1.0
        assert doc["configs"]["control"]["summary"]["bit_identical"] == 1.0


class TestJsonOutput:
    def _doc(self, capsys, argv):
        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_info_json_is_valid_metrics_doc(self, capsys):
        doc = self._doc(capsys, ["info", "--json"])
        validate_metrics_doc(doc)
        assert doc["command"] == "info"
        assert doc["configs"]["defaults"]["device"]["dies"] == 64

    def test_fig2_json_counts_regions(self, capsys):
        doc = self._doc(capsys, ["fig2", "--json"])
        validate_metrics_doc(doc)
        regions = doc["configs"]["placement"]["regions"]
        assert sum(r["dies"] for r in regions.values()) == 64

    def test_hotcold_json_matches_table_counters(self, capsys):
        doc = self._doc(capsys, ["hotcold", "--writes", "1500", "--json"])
        validate_metrics_doc(doc)
        assert sorted(doc["configs"]) == ["mixed", "separated"]
        for section in doc["configs"].values():
            assert "summary" in section and "registry" in section

    def test_recover_json_reports_recovery(self, capsys):
        doc = self._doc(capsys, ["recover", "--writes", "400", "--json"])
        validate_metrics_doc(doc)
        summary = doc["configs"]["recover"]["summary"]
        # pages allocated but never written aren't recoverable from metadata
        assert 0 < summary["recovered_pages"] <= summary["live_pages"]


class TestMetricsOutAndReport:
    def test_hotcold_metrics_out_then_report(self, tmp_path, capsys):
        out = tmp_path / "hc.json"
        assert main(["hotcold", "--writes", "1200", "--metrics-out", str(out)]) == 0
        table = capsys.readouterr().out
        assert "separated" in table and str(out) in table
        doc = json.loads(out.read_text())
        validate_metrics_doc(doc)

        assert main(["report", str(out), "--validate"]) == 0
        assert "OK" in capsys.readouterr().out

        assert main(["report", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "mixed / summary" in rendered
        assert "mgmt.gc_copybacks" in rendered

    def test_report_json_round_trips_unchanged(self, tmp_path, capsys):
        out = tmp_path / "hc.json"
        assert main(["hotcold", "--writes", "800", "--json"]) == 0
        original = capsys.readouterr().out
        out.write_text(original)
        assert main(["report", str(out), "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(original)

    def test_report_rejects_invalid_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope", "command": "x", "configs": {"a": {}}}))
        assert main(["report", str(bad)]) == 1
        assert "invalid metrics document" in capsys.readouterr().err


class TestLintCommand:
    GOOD = "tests/analysis/fixtures/repro/flash/typed_raise_good.py"
    BAD = "tests/analysis/fixtures/repro/flash/typed_raise_bad.py"

    def test_lint_clean_file_exits_zero(self, capsys):
        assert main(["lint", self.GOOD]) == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_sarif_output_is_valid_json(self, capsys):
        assert main(["lint", self.GOOD, "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_lint_bad_file_exits_one_with_sarif_results(self, capsys):
        assert main([
            "lint", self.BAD, "--rules", "errors.typed-discipline",
            "--format", "sarif",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["runs"][0]["results"]) >= 3

    def test_write_then_apply_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", self.BAD, "--rules", "errors.typed-discipline",
            "--write-baseline", str(baseline),
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", self.BAD, "--rules", "errors.typed-discipline",
            "--baseline", str(baseline),
        ]) == 0
        assert "OK" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "broken.json"
        baseline.write_text("{")
        assert main(["lint", self.GOOD, "--baseline", str(baseline)]) == 2
        assert "error" in capsys.readouterr().err

    def test_changed_outside_git_exits_two(self, tmp_path, capsys, monkeypatch):
        fixture = (tmp_path / "mod.py")
        fixture.write_text("x = 1\n")
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(fixture), "--changed"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", self.GOOD, "--rules", "nope.rule"]) == 2
        assert "error" in capsys.readouterr().err
