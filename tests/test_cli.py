"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["fig2", "--dies", "16"],
            ["fig3", "--transactions", "100"],
            ["hotcold", "--writes", "500"],
            ["ftl", "--writes", "500"],
            ["recover", "--writes", "200"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "64 dies" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "rgStock" in out
        assert "29" in out

    def test_hotcold_small(self, capsys):
        assert main(["hotcold", "--writes", "2000"]) == 0
        out = capsys.readouterr().out
        assert "separated" in out

    def test_ftl_small(self, capsys):
        assert main(["ftl", "--writes", "1500"]) == 0
        out = capsys.readouterr().out
        assert "noftl-regions" in out

    def test_recover_small(self, capsys):
        assert main(["recover", "--writes", "600"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "verified" in out
