"""Registry resolution: names stay aliases, objects pass through."""

import pytest

from repro.policies import (
    CostBenefitGC,
    GCPolicy,
    GreedyGC,
    WLPolicy,
    available_gc_policies,
    available_wl_policies,
    policy_name,
    resolve_gc_policy,
    resolve_wl_policy,
)


class TestCatalogue:
    def test_gc_catalogue_pinned(self):
        assert available_gc_policies() == [
            "age_aware",
            "cost_benefit",
            "d_choices",
            "greedy",
            "learned",
            "windowed_greedy",
        ]

    def test_wl_catalogue_pinned(self):
        assert available_wl_policies() == ["coldest_first", "oldest_data"]


class TestResolve:
    def test_string_alias_resolves_to_policy_object(self):
        policy = resolve_gc_policy("greedy")
        assert isinstance(policy, GreedyGC)
        assert policy.name == "greedy"

    def test_each_resolution_is_a_fresh_instance(self):
        # stateful policies (learned, d_choices) must not share RNGs/weights
        assert resolve_gc_policy("learned") is not resolve_gc_policy("learned")

    def test_policy_object_passes_through_untouched(self):
        obj = CostBenefitGC()
        assert resolve_gc_policy(obj) is obj

    def test_unknown_gc_name_raises_with_catalogue(self):
        with pytest.raises(ValueError, match="bogus"):
            resolve_gc_policy("bogus")

    def test_unknown_wl_name_raises(self):
        with pytest.raises(ValueError, match="nope"):
            resolve_wl_policy("nope")

    def test_wl_resolution(self):
        policy = resolve_wl_policy("coldest_first")
        assert isinstance(policy, WLPolicy)
        assert policy.name == "coldest_first"

    @pytest.mark.parametrize("name", [
        "age_aware", "cost_benefit", "d_choices", "greedy", "learned", "windowed_greedy",
    ])
    def test_every_registered_gc_name_resolves(self, name):
        policy = resolve_gc_policy(name, seed=11)
        assert isinstance(policy, GCPolicy)
        assert policy.name == name


class TestPolicyName:
    def test_string_spec(self):
        assert policy_name("cost_benefit") == "cost_benefit"

    def test_object_spec(self):
        assert policy_name(GreedyGC()) == "greedy"
