"""Behavioural tests for the classical GC and WL policies."""

from repro.policies import (
    AgeAwareGC,
    ColdestFirstWL,
    DChoicesGC,
    OldestDataWL,
    WindowedGreedyGC,
    select_victim_cost_benefit,
    select_victim_greedy,
)

from tests.policies.util import block


class TestSharedSelectors:
    """The free functions back both the policy objects and the old
    repro.mapping.policies API — same loop bodies, same answers."""

    def test_greedy_picks_most_invalid(self):
        a = block(0, 0, valid=3)
        b = block(0, 1, valid=1)
        assert select_victim_greedy([a, b]) is b

    def test_cost_benefit_prefers_old_cold(self):
        young = block(0, 0, valid=2, last_write=90.0)
        old = block(0, 1, valid=2, last_write=10.0)
        assert select_victim_cost_benefit([young, old], now_us=100.0) is old


class TestWindowedGreedy:
    def test_greedy_within_the_oldest_window(self):
        # the emptiest block overall is NOT in the W oldest — windowed
        # greedy must ignore it and pick the emptiest of the window
        newest_empty = block(0, 0, valid=0, last_write=900.0)
        old_a = block(0, 1, valid=3, last_write=10.0)
        old_b = block(0, 2, valid=1, last_write=20.0)
        policy = WindowedGreedyGC(window=2)
        assert policy.choose_victim([newest_empty, old_a, old_b], now_us=1000.0) is old_b

    def test_degenerates_to_greedy_with_large_window(self):
        a = block(0, 0, valid=3, last_write=5.0)
        b = block(0, 1, valid=0, last_write=7.0)
        policy = WindowedGreedyGC(window=64)
        assert policy.choose_victim([a, b], now_us=100.0) is b


class TestDChoices:
    def test_picks_emptiest_of_sample(self):
        # with d >= pool size the sample is the pool: plain greedy
        a = block(0, 0, valid=3)
        b = block(0, 1, valid=0)
        policy = DChoicesGC(seed=0, d=8)
        assert policy.choose_victim([a, b], now_us=0.0) is b

    def test_sample_is_seed_deterministic(self):
        pool_a = [block(0, i, pages=8, valid=i % 8) for i in range(20)]
        pool_b = [block(0, i, pages=8, valid=i % 8) for i in range(20)]
        pick_a = DChoicesGC(seed=42, d=3).choose_victim(pool_a, now_us=0.0)
        pick_b = DChoicesGC(seed=42, d=3).choose_victim(pool_b, now_us=0.0)
        assert (pick_a.die, pick_a.block) == (pick_b.die, pick_b.block)


class TestAgeAware:
    def test_age_breaks_ties_between_equally_invalid_blocks(self):
        young = block(0, 0, valid=2, last_write=95.0)
        old = block(0, 1, valid=2, last_write=5.0)
        assert AgeAwareGC().choose_victim([young, old], now_us=100.0) is old

    def test_invalidity_still_dominates(self):
        old_full = block(0, 0, valid=4, last_write=0.0)  # nothing to reclaim
        fresh_empty = block(0, 1, valid=0, last_write=99.0)
        assert AgeAwareGC().choose_victim([old_full, fresh_empty], now_us=100.0) is fresh_empty


class TestWLPolicies:
    def test_coldest_first_pairs_worn_free_with_least_worn_full(self):
        frees = [block(0, 0), block(0, 1)]
        fulls = [block(0, 2), block(0, 3)]
        erases = {0: 10, 1: 50, 2: 7, 3: 1}
        move = ColdestFirstWL().choose_move(frees, fulls, lambda b: erases[b.block])
        assert move is not None
        worn, cold = move
        assert worn.block == 1 and cold.block == 3

    def test_oldest_data_picks_stalest_full_block(self):
        frees = [block(0, 0), block(0, 1)]
        fulls = [block(0, 2, last_write=500.0), block(0, 3, last_write=20.0)]
        erases = {0: 10, 1: 50, 2: 1, 3: 40}
        move = OldestDataWL().choose_move(frees, fulls, lambda b: erases[b.block])
        assert move is not None
        worn, cold = move
        assert worn.block == 1  # still the most-erased free block
        assert cold.block == 3  # stalest data, even though heavily erased

    def test_empty_inputs_return_none(self):
        assert ColdestFirstWL().choose_move([], [block(0, 1)], lambda b: 0) is None
        assert OldestDataWL().choose_move([block(0, 0)], [], lambda b: 0) is None
