"""Policy objects through the engine: aliases and objects are equivalent.

The golden-snapshot tests in ``tests/mapping/test_engine_equivalence.py``
pin the *string* path; here we pin that handing the engine a constructed
policy object takes exactly the same decisions.
"""

import pytest

from repro.policies import CostBenefitGC, GreedyGC, LearnedGC

from tests.mapping.equivalence_workloads import run_engine_workload


@pytest.mark.parametrize(
    "obj,alias",
    [(GreedyGC(), "greedy"), (CostBenefitGC(), "cost_benefit")],
    ids=["greedy", "cost_benefit"],
)
def test_policy_object_matches_string_alias(obj, alias):
    assert run_engine_workload(obj, seed=1) == run_engine_workload(alias, seed=1)


def test_learned_policy_survives_a_full_workload():
    policy = LearnedGC(seed=0)
    snapshot = run_engine_workload(policy, seed=2, ops=3000)
    assert snapshot["gc_erases"] > 0
    assert policy.updates > 0  # the engine's observe() feed reached it


def test_learned_policy_workload_is_reproducible():
    a = run_engine_workload(LearnedGC(seed=3), seed=4, ops=3000)
    b = run_engine_workload(LearnedGC(seed=3), seed=4, ops=3000)
    assert a == b
