"""The learned (online linear scorer) GC policy."""

import pytest

from repro.policies import LearnedGC

from tests.policies.util import block, candidate_pool


class TestConstruction:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            LearnedGC(epsilon=1.5)

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            LearnedGC(learning_rate=0.0)


class TestScoring:
    def test_greedy_start_prefers_invalid_blocks(self):
        # the initial weights favour invalid fraction, so with exploration
        # off the first pick matches greedy on a clear-cut pool
        policy = LearnedGC(seed=0, epsilon=0.0)
        dirty = block(0, 0, valid=0)
        clean = block(0, 1, valid=4)
        assert policy.choose_victim([dirty, clean], now_us=1_000.0) is dirty

    def test_observe_updates_weights_toward_reward(self):
        policy = LearnedGC(seed=0, epsilon=0.0)
        before = list(policy.weights)
        policy.choose_victim(candidate_pool(0), now_us=10_000.0)
        policy.observe({"event": "gc_collect", "valid_pages": 1, "pages_per_block": 8})
        assert policy.updates == 1
        assert policy.weights != before

    def test_irrelevant_events_are_ignored(self):
        policy = LearnedGC(seed=0)
        policy.observe({"event": "wear_level", "valid_pages": 1, "pages_per_block": 8})
        policy.observe({"event": "gc_collect"})  # malformed: no payload
        assert policy.updates == 0

    def test_exploration_is_seeded(self):
        picks = []
        for _ in range(2):
            policy = LearnedGC(seed=99, epsilon=1.0)  # always explore
            run = []
            for round_seed in range(30):
                pick = policy.choose_victim(candidate_pool(round_seed), now_us=5_000.0)
                run.append((pick.die, pick.block))
            picks.append(run)
        assert picks[0] == picks[1]

    def test_learning_changes_later_choices_deterministically(self):
        # two identical policies fed identical streams stay in lockstep
        # even while their weights move
        a = LearnedGC(seed=5, epsilon=0.1)
        b = LearnedGC(seed=5, epsilon=0.1)
        for round_seed in range(50):
            pool_a = candidate_pool(round_seed)
            pool_b = candidate_pool(round_seed)
            pick_a = a.choose_victim(pool_a, now_us=2_000.0 * round_seed)
            pick_b = b.choose_victim(pool_b, now_us=2_000.0 * round_seed)
            assert (pick_a.die, pick_a.block) == (pick_b.die, pick_b.block)
            for policy, pick in ((a, pick_a), (b, pick_b)):
                policy.observe(
                    {
                        "event": "gc_collect",
                        "valid_pages": pick.valid_count,
                        "pages_per_block": pick.pages_per_block,
                    }
                )
        assert a.weights == b.weights
        assert a.updates == b.updates > 0
