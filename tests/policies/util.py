"""Shared helpers for the policy-lab tests."""

from __future__ import annotations

import random

from repro.mapping import BlockInfo


def block(die, blk, pages=4, valid=0, written=None, last_write=0.0):
    """Build a BlockInfo with `valid` live pages out of `written` written."""
    written = pages if written is None else written
    info = BlockInfo(die=die, block=blk, pages_per_block=pages)
    for i in range(written):
        info.note_write(i, last_write)
    for i in range(written - valid):
        info.invalidate(i)
    return info


def candidate_pool(seed, count=12, pages=8):
    """A deterministic, varied pool of GC candidates (full blocks)."""
    rng = random.Random(seed)
    pool = []
    for i in range(count):
        pool.append(
            block(
                die=rng.randrange(4),
                blk=i,
                pages=pages,
                valid=rng.randrange(pages + 1),
                last_write=rng.uniform(0.0, 50_000.0),
            )
        )
    return pool
