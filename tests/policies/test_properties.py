"""Contract properties every registered policy must satisfy.

Two invariants back the whole policy lab:

* *membership* — ``choose_victim`` returns an element of its candidate
  set, and ``None`` exactly when the set is empty; no policy may invent
  a block.
* *determinism* — two instances resolved with the same seed replay the
  same pick sequence over the same candidate stream (including any
  ``observe()`` feedback), so simulation runs stay reproducible.
"""

import pytest

from repro.policies import available_gc_policies, available_wl_policies, resolve_gc_policy, resolve_wl_policy

from tests.policies.util import block, candidate_pool

GC_NAMES = available_gc_policies()
WL_NAMES = available_wl_policies()


@pytest.mark.parametrize("name", GC_NAMES)
class TestGCMembership:
    def test_choice_is_a_member_of_the_candidate_set(self, name):
        policy = resolve_gc_policy(name, seed=7)
        for round_seed in range(20):
            pool = candidate_pool(round_seed)
            pick = policy.choose_victim(pool, now_us=100_000.0)
            assert any(pick is info for info in pool)

    def test_empty_candidates_return_none(self, name):
        policy = resolve_gc_policy(name, seed=7)
        assert policy.choose_victim([], now_us=0.0) is None

    def test_single_candidate_is_always_chosen(self, name):
        policy = resolve_gc_policy(name, seed=7)
        only = block(0, 0, valid=2)
        assert policy.choose_victim([only], now_us=50.0) is only


@pytest.mark.parametrize("name", GC_NAMES)
class TestGCDeterminism:
    def test_same_seed_instances_replay_identically(self, name):
        def run(policy):
            picks = []
            for round_seed in range(40):
                pool = candidate_pool(round_seed)
                pick = policy.choose_victim(pool, now_us=1_000.0 * round_seed)
                picks.append((pick.die, pick.block))
                # feed the same GC outcome back, as the engine would
                policy.observe(
                    {
                        "event": "gc_collect",
                        "valid_pages": pick.valid_count,
                        "pages_per_block": pick.pages_per_block,
                    }
                )
            return picks

        a = run(resolve_gc_policy(name, seed=123))
        b = run(resolve_gc_policy(name, seed=123))
        assert a == b

    def test_candidate_iteration_order_does_not_matter(self, name):
        policy_fwd = resolve_gc_policy(name, seed=9)
        policy_rev = resolve_gc_policy(name, seed=9)
        for round_seed in range(20):
            pool = candidate_pool(round_seed)
            fwd = policy_fwd.choose_victim(list(pool), now_us=77_000.0)
            rev = policy_rev.choose_victim(list(reversed(pool)), now_us=77_000.0)
            assert (fwd.die, fwd.block) == (rev.die, rev.block)


class TestLearnedRNGUniformity:
    """LearnedGC draws from its RNG uniformly: two draws per non-empty
    selection, whatever the pool size.

    The seed implementation only touched the RNG when ``len(pool) > 1``,
    so a size-1 pool silently skipped the stream and every later pick
    depended on the *sizes* of earlier pools, not just how many
    selections had happened — a replay hazard this class pins shut.
    """

    def test_each_selection_draws_exactly_twice(self):
        import random

        from repro.policies.learned import LearnedGC

        for pool in ([block(0, 0, valid=2)], candidate_pool(3)):
            policy = LearnedGC(seed=5)
            policy.choose_victim(pool, now_us=1.0)
            expected = random.Random(5)
            expected.random()
            expected.random()
            assert policy._rng.random() == expected.random()

    def test_empty_pool_draws_nothing(self):
        import random

        from repro.policies.learned import LearnedGC

        policy = LearnedGC(seed=5)
        assert policy.choose_victim([], now_us=1.0) is None
        assert policy._rng.random() == random.Random(5).random()

    def test_size_one_pools_keep_same_seed_instances_in_lockstep(self):
        from repro.policies.learned import LearnedGC

        # epsilon=1 makes every pick pure RNG, so any stream skew caused
        # by the size-1 pool would surface as a different shared-pool pick
        a = LearnedGC(seed=11, epsilon=1.0)
        b = LearnedGC(seed=11, epsilon=1.0)
        a.choose_victim([block(9, 9, valid=2)], now_us=10.0)
        b.choose_victim(candidate_pool(1), now_us=10.0)
        shared = candidate_pool(0)
        pick_a = a.choose_victim(list(shared), now_us=20.0)
        pick_b = b.choose_victim(list(shared), now_us=20.0)
        assert (pick_a.die, pick_a.block) == (pick_b.die, pick_b.block)

    def test_exploring_a_single_candidate_returns_it(self):
        from repro.policies.learned import LearnedGC

        policy = LearnedGC(seed=2, epsilon=1.0)
        only = block(0, 0, valid=1)
        assert policy.choose_victim([only], now_us=5.0) is only


@pytest.mark.parametrize("name", WL_NAMES)
class TestWLContract:
    def test_move_members_and_empty_none(self, name):
        policy = resolve_wl_policy(name, seed=3)
        frees = [block(0, i) for i in range(3)]
        fulls = [block(1, i, valid=4, last_write=float(i)) for i in range(3)]
        move = policy.choose_move(frees, fulls, lambda b: b.block)
        assert move is not None
        worn, cold = move
        assert any(worn is b for b in frees)
        assert any(cold is b for b in fulls)
        assert policy.choose_move([], fulls, lambda b: 0) is None
        assert policy.choose_move(frees, [], lambda b: 0) is None
