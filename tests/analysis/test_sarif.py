"""SARIF 2.1.0 reporter: schema-pinning for the code-scanning subset.

GitHub code scanning ingests a specific minimal shape; these tests pin
it so reporter drift fails loudly instead of silently breaking upload.
"""

import json
from pathlib import Path

from repro.analysis import default_registry, lint_paths
from repro.analysis.reporting import SARIF_SCHEMA_URI, SARIF_VERSION, render_sarif

FIXTURES = Path(__file__).parent / "fixtures"


def _document(paths, rule_ids=None):
    registry = default_registry()
    result = lint_paths(paths, rule_ids)
    return json.loads(render_sarif(result, registry)), result, registry


class TestEnvelope:
    def test_schema_and_version_are_pinned(self):
        doc, __, __ = _document([FIXTURES / "repro/flash/typed_raise_good.py"])
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert len(doc["runs"]) == 1

    def test_driver_carries_rule_metadata(self):
        doc, result, registry = _document(
            [FIXTURES / "repro/flash/typed_raise_good.py"]
        )
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == list(result.rules_run)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"] == registry.get(rule["id"]).summary


class TestResults:
    def test_violations_map_to_results_with_locations(self):
        doc, result, __ = _document(
            [FIXTURES / "repro/flash/typed_raise_bad.py"],
            rule_ids=["errors.typed-discipline"],
        )
        run = doc["runs"][0]
        assert len(run["results"]) == len(result.violations) >= 3
        rule_index = {r["id"]: i for i, r in enumerate(run["tool"]["driver"]["rules"])}
        for sarif_result, violation in zip(run["results"], result.violations):
            assert sarif_result["ruleId"] == violation.rule_id
            assert sarif_result["ruleIndex"] == rule_index[violation.rule_id]
            assert sarif_result["level"] == "error"
            assert sarif_result["message"]["text"] == violation.message
            location = sarif_result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == violation.path
            assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
            assert location["region"]["startLine"] == violation.line
            assert location["region"]["startColumn"] == violation.col

    def test_clean_run_has_empty_results_and_successful_invocation(self):
        doc, __, __ = _document([FIXTURES / "repro/flash/typed_raise_good.py"])
        run = doc["runs"][0]
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True
        assert run["invocations"][0]["toolExecutionNotifications"] == []

    def test_parse_errors_become_notifications(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        doc, __, __ = _document([broken])
        invocation = doc["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        assert len(invocation["toolExecutionNotifications"]) == 1
        assert invocation["toolExecutionNotifications"][0]["level"] == "error"

    def test_output_is_deterministic(self):
        paths = [FIXTURES / "repro/flash/typed_raise_bad.py"]
        first, __, __ = _document(paths)
        second, __, __ = _document(paths)
        assert first == second
