"""Per-rule coverage: every bad fixture trips its rule, every good one
lints clean, and seeded violations carry the right rule id."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: (rule id, bad fixture, good fixture, minimum violations in the bad one)
RULE_CASES = [
    (
        "determinism.wallclock",
        "repro/flash/wallclock_bad.py",
        "repro/flash/wallclock_good.py",
        3,
    ),
    (
        "determinism.unseeded-random",
        "repro/flash/unseeded_random_bad.py",
        "repro/flash/unseeded_random_good.py",
        3,
    ),
    (
        "determinism.set-iteration",
        "repro/flash/set_iteration_bad.py",
        "repro/flash/set_iteration_good.py",
        3,
    ),
    ("guards.optional-hook", "guards_bad.py", "guards_good.py", 3),
    ("counters.int-drift", "counters_drift_bad.py", "counters_drift_good.py", 3),
    (
        "counters.doc-coverage",
        "counters_coverage_bad.py",
        "counters_coverage_good.py",
        1,
    ),
    ("hygiene.unused-import", "hygiene_bad.py", "hygiene_good.py", 2),
    (
        "errors.typed-discipline",
        "repro/flash/typed_raise_bad.py",
        "repro/flash/typed_raise_good.py",
        3,
    ),
    (
        "packed.typestate",
        "repro/flash/packed_bad.py",
        "repro/flash/packed_good.py",
        2,
    ),
    (
        "sharding.partition-closure",
        "repro/bench/partition_bad.py",
        "repro/bench/partition_good.py",
        3,
    ),
    (
        "determinism.rng-flow",
        "repro/flash/rngflow_bad.py",
        "repro/flash/rngflow_good.py",
        3,
    ),
]

IDS = [case[0] for case in RULE_CASES]


@pytest.mark.parametrize("rule_id,bad,good,min_hits", RULE_CASES, ids=IDS)
class TestRulePairs:
    def test_bad_fixture_trips_only_this_rule(self, rule_id, bad, good, min_hits):
        result = lint_paths([FIXTURES / bad], rule_ids=[rule_id])
        assert result.exit_code == 1
        assert len(result.violations) >= min_hits
        assert {v.rule_id for v in result.violations} == {rule_id}

    def test_good_fixture_is_clean(self, rule_id, bad, good, min_hits):
        result = lint_paths([FIXTURES / good], rule_ids=[rule_id])
        assert result.exit_code == 0, [v.format() for v in result.violations]


class TestScoping:
    def test_determinism_rules_skip_non_sim_paths(self, tmp_path):
        # Same wall-clock code outside a repro/<sim-package> path: out of scope.
        bench = tmp_path / "bench_host.py"
        bench.write_text("import time\n\ndef t() -> float:\n    return time.time()\n")
        result = lint_paths([bench], rule_ids=["determinism.wallclock"])
        assert result.exit_code == 0

    def test_shard_runner_modules_are_in_determinism_scope(self, tmp_path):
        # bench/ is host-side and exempt — except the shard runner and its
        # supervisor, which promise deterministic re-execution.
        for name in ("sharding.py", "supervisor.py"):
            mod = tmp_path / "repro" / "bench" / name
            mod.parent.mkdir(parents=True, exist_ok=True)
            mod.write_text("import time\n\ndef t() -> float:\n    return time.time()\n")
            result = lint_paths([mod], rule_ids=["determinism.wallclock"])
            assert result.exit_code == 1, name
            assert {v.rule_id for v in result.violations} == {"determinism.wallclock"}

    def test_chaos_module_is_in_determinism_scope(self, tmp_path):
        mod = tmp_path / "repro" / "faults" / "chaos.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import random\n\ndef r() -> float:\n    return random.random()\n")
        result = lint_paths([mod], rule_ids=["determinism.unseeded-random"])
        assert result.exit_code == 1

    def test_unused_import_rule_skips_init_files(self, tmp_path):
        init = tmp_path / "repro" / "pkg" / "__init__.py"
        init.parent.mkdir(parents=True)
        init.write_text("from json import dumps\n")
        result = lint_paths([init], rule_ids=["hygiene.unused-import"])
        assert result.exit_code == 0


class TestCrossModuleCounters:
    """The counter rules resolve mutations against classes from *other*
    linted modules (phase 1 is project-wide)."""

    def test_mutation_in_sibling_module_is_attributed(self, tmp_path):
        (tmp_path / "model.py").write_text(
            "class RemoteStats:\n"
            "    rm_hits: int = 0\n"
            "    rm_ghost: int = 0\n"
            "\n"
            "    def snapshot(self) -> dict[str, float]:\n"
            "        return {'rm_hits': self.rm_hits}\n"
        )
        (tmp_path / "engine.py").write_text(
            "def bump(stats) -> None:\n"
            "    stats.rm_hits += 1\n"
            "    stats.rm_ghost += 1\n"
        )
        result = lint_paths([tmp_path], rule_ids=["counters.doc-coverage"])
        assert [v.rule_id for v in result.violations] == ["counters.doc-coverage"]
        assert "rm_ghost" in result.violations[0].message
        assert result.violations[0].path.endswith("engine.py")

    def test_ambiguous_field_names_are_not_attributed(self, tmp_path):
        # Two Stats classes own `shared`: no unique owner, no report.
        (tmp_path / "model.py").write_text(
            "class AStats:\n"
            "    shared: int = 0\n"
            "    def snapshot(self) -> dict[str, float]:\n"
            "        return {}\n"
            "\n"
            "class BStats:\n"
            "    shared: int = 0\n"
            "    def snapshot(self) -> dict[str, float]:\n"
            "        return {}\n"
            "\n"
            "def bump(stats) -> None:\n"
            "    stats.shared += 1\n"
        )
        result = lint_paths([tmp_path], rule_ids=["counters.doc-coverage"])
        assert result.exit_code == 0
