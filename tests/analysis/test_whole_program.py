"""Whole-program rule regressions that need a multi-module view.

The headline case: deleting the runtime ``PackedPathError`` guard from a
packed command is caught statically — run over a mutated copy of the
good fixture tree, the typestate rule fires exactly where the guard was
removed.  Plus the cross-module flows single-fixture pairs cannot pin:
an unseeded RNG handed into sim scope, and the init-only registry
carve-out being voided when registration becomes worker-reachable.
"""

from pathlib import Path

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


class TestGuardDeletionIsCaught:
    def _mutated_tree(self, tmp_path, mutate):
        """Copy the good packed fixture into a fake repro tree and mutate it."""
        target = tmp_path / "repro" / "flash"
        target.mkdir(parents=True)
        source = (FIXTURES / "repro/flash/packed_good.py").read_text()
        (target / "packed_good.py").write_text(mutate(source))
        return target

    def test_pristine_copy_is_clean(self, tmp_path):
        tree = self._mutated_tree(tmp_path, lambda s: s)
        result = lint_paths([tree], rule_ids=["packed.typestate"])
        assert result.exit_code == 0, [v.format() for v in result.violations]

    def test_deleting_the_runtime_guard_fails_the_lint(self, tmp_path):
        def strip_first_guard(source: str) -> str:
            # remove read_packed's guard: the `if ...: raise` pair
            return source.replace(
                "        if self.faults is not None or self.events is not None:\n"
                '            raise PackedPathError("observers attached")\n',
                "",
                1,
            )

        tree = self._mutated_tree(tmp_path, strip_first_guard)
        result = lint_paths([tree], rule_ids=["packed.typestate"])
        assert result.exit_code == 1
        assert any(
            "read_packed" in v.message and "guard" in v.message
            for v in result.violations
        ), [v.format() for v in result.violations]

    def test_weakening_the_guard_to_one_attr_fails_the_lint(self, tmp_path):
        def weaken(source: str) -> str:
            return source.replace(
                "if self.faults is not None or self.events is not None:",
                "if self.faults is not None:",
                1,
            )

        tree = self._mutated_tree(tmp_path, weaken)
        result = lint_paths([tree], rule_ids=["packed.typestate"])
        assert result.exit_code == 1

    def test_unguarding_a_call_site_fails_the_lint(self, tmp_path):
        def unguard_call(source: str) -> str:
            return source.replace(
                "        device = self.device\n"
                "        if device.faults is None and device.events is None:\n"
                "            return device.read_packed(addr)\n"
                "        return addr\n",
                "        return self.device.read_packed(addr)\n",
                1,
            )

        tree = self._mutated_tree(tmp_path, unguard_call)
        assert "self.device.read_packed" in (tree / "packed_good.py").read_text()
        result = lint_paths([tree], rule_ids=["packed.typestate"])
        assert result.exit_code == 1
        assert any("read_packed" in v.message for v in result.violations)

    def test_real_device_tree_keeps_its_guards(self):
        """The actual flash/mapping modules satisfy the typestate rule —
        the runtime guard in FlashDevice is statically redundant."""
        result = lint_paths(
            [Path("src/repro/flash"), Path("src/repro/mapping")],
            rule_ids=["packed.typestate"],
        )
        assert result.exit_code == 0, [v.format() for v in result.violations]


class TestRngFlowAcrossModules:
    def test_unseeded_rng_into_sim_scope(self, tmp_path):
        root = tmp_path / "repro"
        (root / "flash").mkdir(parents=True)
        (root / "tools").mkdir(parents=True)
        (root / "flash" / "simmod.py").write_text(
            "def run(rng):\n    return rng.random()\n"
        )
        (root / "tools" / "host.py").write_text(
            "import random\n"
            "from repro.flash.simmod import run\n"
            "\n"
            "\n"
            "def main():\n"
            "    rng = random.Random()\n"
            "    return run(rng)\n"
        )
        result = lint_paths([root], rule_ids=["determinism.rng-flow"])
        assert result.exit_code == 1
        assert any("simulation scope" in v.message for v in result.violations)
        assert result.violations[0].path.endswith("host.py")

    def test_seeded_rng_into_sim_scope_is_fine(self, tmp_path):
        root = tmp_path / "repro"
        (root / "flash").mkdir(parents=True)
        (root / "tools").mkdir(parents=True)
        (root / "flash" / "simmod.py").write_text(
            "def run(rng):\n    return rng.random()\n"
        )
        (root / "tools" / "host.py").write_text(
            "import random\n"
            "from repro.flash.simmod import run\n"
            "\n"
            "\n"
            "def main(seed: int):\n"
            "    rng = random.Random(seed)\n"
            "    return run(rng)\n"
        )
        result = lint_paths([root], rule_ids=["determinism.rng-flow"])
        assert result.exit_code == 0, [v.format() for v in result.violations]

    def test_entropy_flows_through_helper_returns(self, tmp_path):
        root = tmp_path / "repro" / "flash"
        root.mkdir(parents=True)
        (root / "seeds.py").write_text(
            "import random\n"
            "import time\n"
            "\n"
            "\n"
            "def ambient() -> int:\n"
            "    return int(time.time())\n"
            "\n"
            "\n"
            "def make_rng() -> random.Random:\n"
            "    return random.Random(ambient())\n"
        )
        result = lint_paths([root], rule_ids=["determinism.rng-flow"])
        assert any("entropy" in v.message for v in result.violations)


class TestCarveOutIsVoidable:
    def test_worker_reachable_registration_voids_the_carve_out(self, tmp_path):
        """partition_good.py's registry idiom is legal *because* register()
        only runs at import time; make the worker call it and both the
        write and the reads become violations."""
        target = tmp_path / "repro" / "bench"
        target.mkdir(parents=True)
        source = (FIXTURES / "repro/bench/partition_good.py").read_text()
        mutated = source.replace(
            "def run_cell(name, counts):\n    factory = lookup(name)\n",
            "def run_cell(name, counts):\n"
            "    register(name, str)\n"
            "    factory = lookup(name)\n",
            1,
        )
        assert mutated != source
        (target / "partition_good.py").write_text(mutated)
        result = lint_paths([target], rule_ids=["sharding.partition-closure"])
        assert result.exit_code == 1
        messages = " | ".join(v.message for v in result.violations)
        assert "writes module-level `REGISTRY`" in messages
        assert "reads module-level mutable `REGISTRY`" in messages
