"""The strict-typing and ruff gates.

The container running tier-1 tests has no mypy/ruff (CI installs them),
so the executable checks skip gracefully when the tools are absent.  What
*is* always enforced here: the pyproject config that CI consumes exists
and says what the docs promise, and the annotation groundwork mypy needs
(every function in src/repro fully annotated) holds.
"""

import ast
import shutil
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src" / "repro"


def _pyproject() -> dict:
    with open(ROOT / "pyproject.toml", "rb") as handle:
        return tomllib.load(handle)


class TestConfigPinned:
    def test_mypy_strict_is_configured(self):
        mypy = _pyproject()["tool"]["mypy"]
        assert mypy["strict"] is True
        assert mypy["files"] == ["src/repro"]
        assert mypy["mypy_path"] == "src"

    def test_mypy_burn_down_table_is_bounded(self):
        overrides = _pyproject()["tool"]["mypy"].get("overrides", [])
        modules = [m for entry in overrides for m in entry["module"]]
        assert len(modules) <= 5, (
            f"burn-down table grew to {len(modules)} modules: {modules}; "
            "fix modules instead of adding overrides"
        )
        # Overrides may only relax, never disable, checking.
        for entry in overrides:
            assert "ignore_errors" not in entry

    def test_ruff_selects_pyflakes_pycodestyle_isort(self):
        lint = _pyproject()["tool"]["ruff"]["lint"]
        assert set(lint["select"]) >= {"E", "F", "W", "I"}


class TestAnnotationCoverage:
    def test_every_function_in_src_repro_is_fully_annotated(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                args = node.args
                missing = [
                    a.arg
                    for a in args.args + args.kwonlyargs + args.posonlyargs
                    if a.annotation is None and a.arg not in ("self", "cls")
                ]
                for star in (args.vararg, args.kwarg):
                    if star is not None and star.annotation is None:
                        missing.append(star.arg)
                if node.returns is None and node.name != "__init__":
                    missing.append("<return>")
                if missing:
                    offenders.append(f"{path}:{node.lineno} {node.name} {missing}")
        assert offenders == [], "\n".join(offenders)


class TestToolGates:
    @pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
    def test_mypy_strict_passes(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
    def test_ruff_check_passes(self):
        proc = subprocess.run(
            ["ruff", "check", "src"],
            cwd=ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
