"""Pragma parsing and suppression semantics."""

from pathlib import Path

from repro.analysis import lint_paths, parse_pragmas
from repro.analysis.pragmas import PragmaLedger

FIXTURES = Path(__file__).parent / "fixtures"


class TestParsing:
    def test_inline_pragma(self):
        [pragma] = parse_pragmas("x = f()  # lint: ok(determinism.wallclock)\n")
        assert pragma.line == 1
        assert pragma.applies_to == 1
        assert pragma.rule_ids == ("determinism.wallclock",)
        assert pragma.justification == ""

    def test_justification_and_multiple_rules(self):
        [pragma] = parse_pragmas(
            "y = g()  # lint: ok(rule-a, rule-b) -- measured host-side only\n"
        )
        assert pragma.rule_ids == ("rule-a", "rule-b")
        assert pragma.justification == "measured host-side only"

    def test_standalone_comment_applies_to_next_code_line(self):
        source = (
            "import time\n"
            "\n"
            "# lint: ok(determinism.wallclock) -- why\n"
            "# another comment\n"
            "t = time.time()\n"
        )
        [pragma] = parse_pragmas(source)
        assert pragma.line == 3
        assert pragma.applies_to == 5

    def test_whitespace_tolerance(self):
        [pragma] = parse_pragmas("z = 1  #lint:ok( a.b , c.d )--  spaced  \n")
        assert pragma.rule_ids == ("a.b", "c.d")
        assert pragma.justification == "spaced"

    def test_non_pragma_comments_ignored(self):
        assert parse_pragmas("# lint this please\nx = 1  # ok(nothing)\n") == []

    def test_empty_rule_list_ignored(self):
        assert parse_pragmas("x = 1  # lint: ok( )\n") == []

    def test_pragma_syntax_inside_strings_is_not_a_pragma(self):
        # Docs quoting the grammar (e.g. this module's own docstring) must
        # not register as suppressions — only real COMMENT tokens count.
        source = '"""Usage::\n\n    # lint: ok(rule-id)\n"""\nx = 1\n'
        assert parse_pragmas(source) == []
        assert parse_pragmas('s = "# lint: ok(rule-a)"\n') == []


class TestLedger:
    def test_matching_pragma_suppresses_and_is_used(self):
        [pragma] = parse_pragmas("x = f()  # lint: ok(rule-a)\n")
        ledger = PragmaLedger([pragma])
        assert ledger.suppresses("rule-a", 1)
        assert not ledger.suppresses("rule-b", 1)
        assert not ledger.suppresses("rule-a", 2)
        assert ledger.unused() == []

    def test_unfired_pragma_reported_unused(self):
        [pragma] = parse_pragmas("x = 1  # lint: ok(rule-a)\n")
        ledger = PragmaLedger([pragma])
        assert ledger.unused() == [pragma]


class TestEndToEnd:
    def test_pragma_fixture(self):
        result = lint_paths(
            [FIXTURES / "repro" / "flash" / "pragma_cases.py"],
            rule_ids=["determinism.wallclock", "determinism.unseeded-random"],
        )
        # Both wallclock hits are pragma-suppressed (inline + standalone form).
        assert result.violations == []
        assert result.exit_code == 0
        # The unseeded-random pragma never fires and is surfaced as unused.
        assert len(result.unused_pragmas) == 1
        path, pragma = result.unused_pragmas[0]
        assert path.endswith("pragma_cases.py")
        assert pragma.rule_ids == ("determinism.unseeded-random",)
