"""Baseline files: round-trip, count semantics, loud failure on malformed input."""

import json
from pathlib import Path

import pytest

from repro.analysis import apply_baseline, lint_paths, load_baseline, render_baseline
from repro.analysis.baseline import BASELINE_SCHEMA_VERSION, BaselineError

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "repro/flash/typed_raise_bad.py"
RULE = ["errors.typed-discipline"]


def _result():
    return lint_paths([BAD], rule_ids=RULE)


class TestRoundTrip:
    def test_own_baseline_suppresses_everything(self, tmp_path):
        result = _result()
        assert result.exit_code == 1
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(render_baseline(result))
        filtered = apply_baseline(result, load_baseline(baseline_file))
        assert filtered.violations == []
        assert filtered.exit_code == 0

    def test_unbaselined_violations_pass_through(self, tmp_path):
        result = _result()
        document = json.loads(render_baseline(result))
        document["entries"] = document["entries"][:1]  # keep one fingerprint
        baseline_file = tmp_path / "partial.json"
        baseline_file.write_text(json.dumps(document))
        filtered = apply_baseline(result, load_baseline(baseline_file))
        assert len(filtered.violations) == len(result.violations) - 1
        assert filtered.exit_code == 1

    def test_matching_ignores_line_numbers(self, tmp_path):
        result = _result()
        document = json.loads(render_baseline(result))
        assert all("line" not in entry for entry in document["entries"])

    def test_count_bounds_how_many_matches_absorb(self):
        result = _result()
        [violation, *rest] = result.violations
        duplicated = type(result)(
            violations=[violation, violation],
            files_checked=1,
            rules_run=result.rules_run,
        )
        from collections import Counter

        one = Counter({(violation.rule_id, violation.path, violation.message): 1})
        filtered = apply_baseline(duplicated, one)
        assert len(filtered.violations) == 1


class TestMalformed:
    def test_schema_version_is_pinned(self):
        assert BASELINE_SCHEMA_VERSION == "repro.lint-baseline/v1"

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all {",
            json.dumps({"schema": "something-else/v9", "entries": []}),
            json.dumps({"schema": BASELINE_SCHEMA_VERSION, "entries": "nope"}),
            json.dumps({"schema": BASELINE_SCHEMA_VERSION, "entries": [{"rule": "r"}]}),
            json.dumps({
                "schema": BASELINE_SCHEMA_VERSION,
                "entries": [{"rule": "r", "path": "p", "message": "m", "count": 0}],
            }),
        ],
        ids=["bad-json", "wrong-schema", "entries-not-list", "missing-keys", "bad-count"],
    )
    def test_malformed_baseline_raises(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload)
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(tmp_path / "absent.json")


class TestRepoBaseline:
    def test_checked_in_baseline_is_empty(self):
        baseline = load_baseline(Path(__file__).parents[2] / "lint-baseline.json")
        assert sum(baseline.values()) == 0
