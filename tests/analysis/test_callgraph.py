"""Call-graph resolution: functions, methods, aliases, references, reachability."""

from pathlib import Path

from repro.analysis.callgraph import MODULE_BODY, ProjectIndex, module_name_of
from repro.analysis.core import SourceModule


def _module(tmp_path: Path, rel: str, source: str) -> SourceModule:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return SourceModule(path, rel, source)


def _index(tmp_path: Path, files: dict[str, str]) -> ProjectIndex:
    return ProjectIndex.build(
        [_module(tmp_path, rel, src) for rel, src in files.items()]
    )


def _edge_set(index: ProjectIndex, caller: str) -> set[str]:
    return {e.callee for e in index.calls_from(caller) if e.kind == "call"}


class TestModuleNaming:
    def test_fake_repro_root_maps_to_package_names(self, tmp_path):
        mod = _module(tmp_path, "repro/flash/dev.py", "x = 1\n")
        assert module_name_of(mod) == "repro.flash.dev"

    def test_top_level_file_uses_its_stem(self, tmp_path):
        mod = _module(tmp_path, "scratch.py", "x = 1\n")
        assert module_name_of(mod) == "scratch"


class TestResolution:
    def test_bare_function_call(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/a.py": "def callee():\n    pass\n\ndef caller():\n    callee()\n",
        })
        assert _edge_set(index, "repro.flash.a.caller") == {"repro.flash.a.callee"}

    def test_imported_module_attr_call(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/lib.py": "def helper():\n    pass\n",
            "repro/flash/use.py": (
                "from repro.flash import lib\n\ndef go():\n    lib.helper()\n"
            ),
        })
        assert _edge_set(index, "repro.flash.use.go") == {"repro.flash.lib.helper"}

    def test_from_import_alias_call(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/lib.py": "def helper():\n    pass\n",
            "repro/flash/use.py": (
                "from repro.flash.lib import helper as h\n\ndef go():\n    h()\n"
            ),
        })
        assert _edge_set(index, "repro.flash.use.go") == {"repro.flash.lib.helper"}

    def test_self_method_call(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/cls.py": (
                "class Dev:\n"
                "    def low(self):\n"
                "        pass\n"
                "    def high(self):\n"
                "        self.low()\n"
            ),
        })
        assert _edge_set(index, "repro.flash.cls.Dev.high") == {
            "repro.flash.cls.Dev.low"
        }

    def test_method_on_annotated_parameter(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/cls.py": (
                "class Dev:\n"
                "    def cmd(self):\n"
                "        pass\n"
                "\n"
                "def drive(dev: Dev):\n"
                "    dev.cmd()\n"
            ),
        })
        assert _edge_set(index, "repro.flash.cls.drive") == {
            "repro.flash.cls.Dev.cmd"
        }

    def test_method_on_constructed_local(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/cls.py": (
                "class Dev:\n"
                "    def cmd(self):\n"
                "        pass\n"
                "\n"
                "def drive():\n"
                "    dev = Dev()\n"
                "    dev.cmd()\n"
            ),
        })
        assert "repro.flash.cls.Dev.cmd" in _edge_set(index, "repro.flash.cls.drive")

    def test_inherited_method_resolves_through_mro(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/cls.py": (
                "class Base:\n"
                "    def cmd(self):\n"
                "        pass\n"
                "\n"
                "class Child(Base):\n"
                "    pass\n"
                "\n"
                "def drive(dev: Child):\n"
                "    dev.cmd()\n"
            ),
        })
        assert _edge_set(index, "repro.flash.cls.drive") == {
            "repro.flash.cls.Base.cmd"
        }

    def test_unresolvable_receiver_contributes_no_edge(self, tmp_path):
        index = _index(tmp_path, {
            "repro/flash/cls.py": (
                "def drive(book):\n"
                "    book[0].cmd()\n"
            ),
        })
        assert _edge_set(index, "repro.flash.cls.drive") == set()


class TestReachability:
    def test_transitive_and_reference_edges(self, tmp_path):
        index = _index(tmp_path, {
            "repro/bench/run.py": (
                "def leaf():\n"
                "    pass\n"
                "\n"
                "def middle():\n"
                "    leaf()\n"
                "\n"
                "def entry():\n"
                "    middle()\n"
                "\n"
                "def dispatch(registry):\n"
                "    registry['x'] = referenced\n"
                "\n"
                "def referenced():\n"
                "    pass\n"
            ),
        })
        reachable = index.reachable_from(["repro.bench.run.entry"])
        assert "repro.bench.run.middle" in reachable
        assert "repro.bench.run.leaf" in reachable
        assert "repro.bench.run.referenced" not in reachable
        # first-class references count as edges from their holder
        via_ref = index.reachable_from(["repro.bench.run.dispatch"])
        assert "repro.bench.run.referenced" in via_ref

    def test_module_body_calls_are_attributed_to_pseudo_caller(self, tmp_path):
        index = _index(tmp_path, {
            "repro/bench/reg.py": (
                "def register():\n"
                "    pass\n"
                "\n"
                "register()\n"
            ),
        })
        callers = {e.caller for e in index.calls_to("repro.bench.reg.register")}
        assert callers == {f"{MODULE_BODY}.repro.bench.reg"}
