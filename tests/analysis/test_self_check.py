"""The shipped tree must satisfy its own gates.

This is the test-suite mirror of CI's `repro lint src/repro` step: if a
change introduces a violation, this fails locally before CI does.
"""

from pathlib import Path

from repro.analysis import lint_paths, parse_pragmas

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestSelfCheck:
    def test_src_repro_lints_clean(self):
        result = lint_paths([SRC])
        assert result.parse_errors == []
        assert result.violations == [], "\n" + "\n".join(
            v.format() for v in result.violations
        )
        assert result.exit_code == 0

    def test_src_covers_the_whole_package(self):
        result = lint_paths([SRC])
        assert result.files_checked == len(list(SRC.rglob("*.py")))
        assert result.files_checked > 70  # the package, not a subset

    def test_no_unused_pragmas_in_src(self):
        result = lint_paths([SRC])
        assert result.unused_pragmas == [], (
            "stale pragmas (delete them): "
            + ", ".join(f"{p}:{pr.line}" for p, pr in result.unused_pragmas)
        )

    def test_every_src_pragma_carries_a_justification(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for pragma in parse_pragmas(path.read_text(encoding="utf-8")):
                if not pragma.justification:
                    offenders.append(f"{path}:{pragma.line}")
        assert offenders == [], (
            "pragmas without `-- why` justification: " + ", ".join(offenders)
        )
