"""Engine mechanics, reporters, and the `repro lint` CLI surface."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    Rule,
    RuleRegistry,
    default_registry,
    lint_paths,
    render_human,
    render_json,
)
from repro.analysis.reporting import LINT_SCHEMA_VERSION
from repro.cli import build_parser, main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "hygiene_bad.py"
GOOD = FIXTURES / "hygiene_good.py"


class TestRegistry:
    def test_default_registry_catalogue(self):
        assert default_registry().ids() == [
            "counters.doc-coverage",
            "counters.int-drift",
            "determinism.rng-flow",
            "determinism.set-iteration",
            "determinism.unseeded-random",
            "determinism.wallclock",
            "errors.typed-discipline",
            "guards.optional-hook",
            "hygiene.unused-import",
            "packed.typestate",
            "sharding.partition-closure",
        ]

    def test_duplicate_rule_id_rejected(self):
        class Dup(Rule):
            id = "x.y"
            summary = "dup"

        registry = RuleRegistry()
        registry.register(Dup())
        with pytest.raises(ValueError, match="duplicate rule id"):
            registry.register(Dup())

    def test_unknown_rule_id_names_the_catalogue(self):
        with pytest.raises(KeyError, match="determinism.wallclock"):
            default_registry().select(["no.such.rule"])

    def test_every_rule_has_id_and_summary(self):
        registry = default_registry()
        for rule_id in registry.ids():
            rule = registry.get(rule_id)
            assert rule.id == rule_id
            assert rule.summary


class TestEngineRuns:
    def test_exit_codes(self, tmp_path):
        assert lint_paths([GOOD]).exit_code == 0
        assert lint_paths([BAD]).exit_code == 1
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        result = lint_paths([broken])
        assert result.exit_code == 2
        assert len(result.parse_errors) == 1

    def test_violations_sorted_and_clickable(self):
        result = lint_paths([FIXTURES])
        locations = [(v.path, v.line, v.col, v.rule_id) for v in result.violations]
        assert locations == sorted(locations)
        first = result.violations[0]
        assert first.format().startswith(f"{first.path}:{first.line}:{first.col}: ")

    def test_directory_expansion_counts_files(self):
        result = lint_paths([FIXTURES / "repro"])
        assert result.files_checked == len(
            list((FIXTURES / "repro").rglob("*.py"))
        )

    def test_engine_reuses_registry_instance(self):
        engine = LintEngine(default_registry())
        assert engine.run([GOOD]).exit_code == 0


class TestReporters:
    def test_human_ok_summary(self):
        text = render_human(lint_paths([GOOD]))
        assert "OK: 1 file(s) clean" in text

    def test_human_fail_summary_counts_by_rule(self):
        text = render_human(lint_paths([BAD], rule_ids=["hygiene.unused-import"]))
        assert "FAIL:" in text
        assert "hygiene.unused-import=" in text

    def test_json_document_shape(self):
        document = json.loads(render_json(lint_paths([BAD])))
        assert document["schema"] == LINT_SCHEMA_VERSION
        assert document["exit_code"] == 1
        assert document["files_checked"] == 1
        assert set(document["counts"]) == {"hygiene.unused-import"}
        violation = document["violations"][0]
        assert set(violation) == {"rule", "path", "line", "col", "message"}

    def test_json_is_deterministic(self):
        assert render_json(lint_paths([BAD])) == render_json(lint_paths([BAD]))


class TestCli:
    def test_lint_parses_with_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src/repro"]
        assert args.format == "human"

    def test_cli_exit_codes_match_engine(self, capsys):
        assert main(["lint", str(GOOD)]) == 0
        assert main(["lint", str(BAD)]) == 1
        capsys.readouterr()

    def test_cli_json_output(self, capsys):
        code = main(["lint", str(BAD), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == LINT_SCHEMA_VERSION

    def test_cli_rule_selection(self, capsys):
        assert main(["lint", str(BAD), "--rules", "guards.optional-hook"]) == 0
        capsys.readouterr()

    def test_cli_unknown_rule_exits_2(self, capsys):
        assert main(["lint", str(BAD), "--rules", "no.such.rule"]) == 2
        assert "known rules" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in default_registry().ids():
            assert rule_id in out
