"""--changed mode: git discovery and the full-analysis/filtered-report contract."""

import subprocess

import pytest

from repro.analysis import LintEngine, changed_python_files, default_registry
from repro.analysis.changed import ChangedFilesError


def _git(tmp_path, *args):
    subprocess.run(
        ["git", *args], cwd=tmp_path, check=True, capture_output=True, text=True
    )


@pytest.fixture
def repo(tmp_path):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "symbolic-ref", "HEAD", "refs/heads/main")
    _git(tmp_path, "config", "user.email", "t@example.com")
    _git(tmp_path, "config", "user.name", "t")
    (tmp_path / "committed.py").write_text("x = 1\n")
    (tmp_path / "notes.md").write_text("hi\n")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestDiscovery:
    def test_working_tree_changes_staged_unstaged_untracked(self, repo):
        (repo / "committed.py").write_text("x = 2\n")  # unstaged
        (repo / "fresh.py").write_text("y = 1\n")  # untracked
        (repo / "staged.py").write_text("z = 1\n")
        _git(repo, "add", "staged.py")
        (repo / "notes.md").write_text("changed but not python\n")
        assert changed_python_files(cwd=repo) == {
            "committed.py",
            "fresh.py",
            "staged.py",
        }

    def test_diff_against_base_ref(self, repo):
        _git(repo, "checkout", "-q", "-b", "feature")
        (repo / "committed.py").write_text("x = 3\n")
        _git(repo, "commit", "-q", "-am", "edit")
        assert changed_python_files("main", cwd=repo) == {"committed.py"}
        assert changed_python_files(cwd=repo) == set()  # clean working tree

    def test_rename_reports_the_new_path(self, repo):
        _git(repo, "mv", "committed.py", "renamed.py")
        assert "renamed.py" in changed_python_files(cwd=repo)

    def test_outside_a_repo_raises_loudly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
        lone = tmp_path / "lone"
        lone.mkdir()
        with pytest.raises(ChangedFilesError):
            changed_python_files(cwd=lone)


class TestReportFilter:
    def test_report_only_filters_findings_not_analysis(self, tmp_path):
        """The changed module's entry point makes an *unchanged* module's
        write reachable; with only the unchanged file in report_only the
        finding in the changed file is filtered, and vice versa — but the
        whole-program analysis always saw both."""
        shared = tmp_path / "repro" / "bench"
        shared.mkdir(parents=True)
        (shared / "state.py").write_text(
            "CACHE = {}\n\n\ndef poke(name):\n    CACHE[name] = 1\n"
        )
        (shared / "cells.py").write_text(
            "from repro.bench.state import poke\n"
            "\n"
            "\n"
            "class ShardCell:\n"
            "    def __init__(self, name, fn, args=()):\n"
            "        self.fn = fn\n"
            "\n"
            "\n"
            "def run_cell(name):\n"
            "    poke(name)\n"
            "\n"
            "\n"
            "def build():\n"
            "    return ShardCell('c', run_cell)\n"
        )
        engine = LintEngine(default_registry())
        full = engine.run([tmp_path], ["sharding.partition-closure"])
        assert [v.path for v in full.violations] == [
            str(shared / "state.py")
        ], [v.format() for v in full.violations]

        # filter to the file that *caused* reachability: nothing reported
        only_cells = engine.run(
            [tmp_path],
            ["sharding.partition-closure"],
            report_only={str(shared / "cells.py")},
        )
        assert only_cells.violations == []
        # filter to the file carrying the finding: still reported, which
        # proves the unchanged-but-indexed module participated
        only_state = engine.run(
            [tmp_path],
            ["sharding.partition-closure"],
            report_only={str(shared / "state.py")},
        )
        assert len(only_state.violations) == 1
