"""Bad: internal callers of the deprecated shim surfaces."""

import repro.ftl.stats
from repro.ftl.stats import ManagementStats


def report(tracer) -> dict:
    return tracer.summary()


def report_nested(device) -> dict:
    return device.trace.summary()
