"""Bad: float arithmetic lands in int-annotated *Stats counters."""


class FixtureStats:
    fx_ops: int = 0
    fx_moves: int = 0
    fx_bytes: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "fx_ops": self.fx_ops,
            "fx_moves": self.fx_moves,
            "fx_bytes": self.fx_bytes,
        }


def account(stats: FixtureStats, total: int) -> None:
    stats.fx_ops += total / 2
    stats.fx_moves += 0.5
    stats.fx_bytes = float(total)
