"""Good: canonical import path and snapshot() instead of summary()."""

from repro.mapping.stats import ManagementStats


def fresh() -> ManagementStats:
    return ManagementStats()


def report(tracer) -> dict:
    return tracer.snapshot()


def workload(metrics) -> dict:
    # WorkloadMetrics.summary() is a different, non-deprecated API.
    return metrics.summary()
