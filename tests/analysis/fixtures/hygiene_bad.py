"""Bad: dead imports."""

import json
import os
from pathlib import Path, PurePath


def dump(payload: dict) -> str:
    return json.dumps(payload)


def resolve(raw: str) -> Path:
    return Path(raw)
