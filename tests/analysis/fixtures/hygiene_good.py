"""Good: every import is used — directly, via re-export, quoted
annotation, or an __all__ listing."""

import json
from pathlib import Path as Path  # explicit re-export idiom
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections import OrderedDict

__all__ = ["dump", "json"]


def dump(payload: "OrderedDict[str, int]") -> str:
    return json.dumps(dict(payload))
