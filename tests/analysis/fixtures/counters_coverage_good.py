"""Good: every mutated counter is read by snapshot() or a property."""


class CoverageStats:
    cv_seen: int = 0
    cv_derived: int = 0

    @property
    def cv_ratio(self) -> float:
        return self.cv_derived / self.cv_seen if self.cv_seen else 0.0

    def snapshot(self) -> dict[str, float]:
        return {"cv_seen": self.cv_seen, "cv_ratio": self.cv_ratio}


def record(stats: CoverageStats) -> None:
    stats.cv_seen += 1
    stats.cv_derived += 1
