"""Good: every optional-hook call sits under an `is not None` guard."""


class Engine:
    def __init__(self) -> None:
        self.events = None
        self.faults = None
        self.device = None

    def emit_guarded(self) -> None:
        if self.events is not None:
            self.events.emit("gc_start", victim=3)

    def alias_guarded(self) -> None:
        bus = self.device.events
        if bus is not None:
            bus.emit("gc_start", victim=3)

    def short_circuit(self) -> None:
        self.events is not None and self.events.emit("tick")

    def injector_guarded(self, op: int) -> None:
        if self.faults is not None:
            self.faults.on_command("program_page", op)


class RingBuffer:
    def __init__(self) -> None:
        self.events = []

    def append(self, record: object) -> None:
        # `.append` on `.events` is a plain deque/list, never the hook.
        self.events.append(record)
