"""Bad: a mutated counter never surfaces in its class's snapshot()."""


class CoverageStats:
    cv_seen: int = 0
    cv_hidden: int = 0

    def snapshot(self) -> dict[str, float]:
        return {"cv_seen": self.cv_seen}


def record(stats: CoverageStats) -> None:
    stats.cv_seen += 1
    stats.cv_hidden += 1
