"""Good: time comes from the virtual clock passed in by the caller."""


def stamp(at: float, service_us: float) -> float:
    return at + service_us


def describe(now: float) -> str:
    return f"t={now:.1f}us"
