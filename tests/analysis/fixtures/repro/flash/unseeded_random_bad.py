"""Bad: global-RNG calls and a seedless Random inside a sim package."""

import random
from random import randint


def roll() -> int:
    return randint(1, 6)


def jitter() -> float:
    return random.random()


def make_rng() -> random.Random:
    return random.Random()
