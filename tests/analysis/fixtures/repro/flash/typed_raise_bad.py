"""Bad fixture: bare builtin exceptions raised inside a typed-error package."""


def check_capacity(capacity: int) -> int:
    if capacity < 1:
        raise ValueError("capacity must be positive")
    return capacity


def advance(now: float, to: float) -> float:
    if to < now:
        raise RuntimeError("clock went backwards")
    return to


def explode() -> None:
    raise Exception("something happened")
