"""Bad: wall-clock and entropy reads inside a sim package."""

import os
import time
from time import perf_counter


def stamp() -> float:
    return time.time()


def tick() -> float:
    return perf_counter()


def salt() -> bytes:
    return os.urandom(8)
