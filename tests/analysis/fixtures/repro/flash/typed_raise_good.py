"""Good fixture: typed errors only (subclassing builtins keeps callers working)."""


class FixtureError(Exception):
    """Package-specific error root."""


class ConfigError(FixtureError, ValueError):
    """Invalid configuration value."""


class StateError(FixtureError, RuntimeError):
    """Operation illegal in the current state."""


def check_capacity(capacity: int) -> int:
    if capacity < 1:
        raise ConfigError("capacity must be positive")
    return capacity


def advance(now: float, to: float) -> float:
    if to < now:
        raise StateError("clock went backwards")
    return to


def reraise() -> None:
    try:
        check_capacity(0)
    except ConfigError:
        raise  # bare re-raise keeps the original type; always fine
