"""Good: one explicitly seeded random.Random instance."""

import random


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def jitter(rng: random.Random) -> float:
    return rng.random()
