"""Bad fixture: RNG constructions that break replayability."""

import random
import time

SHARED_RNG = random.Random(1234)  # module-level: shared across importers/cells


def entropy_seeded() -> random.Random:
    seed = int(time.time() * 1000)
    return random.Random(seed)  # seed carries ambient entropy


def hash_seeded(name: str) -> random.Random:
    return random.Random(hash(name))  # PYTHONHASHSEED-dependent seed
