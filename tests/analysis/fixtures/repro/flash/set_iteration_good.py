"""Good: set expressions pinned with sorted() before iteration."""


def walk() -> list[int]:
    out = []
    for value in sorted({1, 2, 3}):
        out.append(value)
    return out


def listed(items: list[int]) -> list[int]:
    return sorted(set(items))


def over_dict(table: dict[int, str]) -> list[int]:
    return [key for key in table]
