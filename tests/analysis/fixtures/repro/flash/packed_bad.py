"""Bad fixture: packed commands without the typestate guard / proof.

``Device`` binds both ``faults`` and ``events``, making it device-like:
every ``*_packed`` method must open with the terminating
``PackedPathError`` guard, and every call site must prove both observer
attributes are ``None`` on the path.
"""


class PackedPathError(Exception):
    pass


class Device:
    def __init__(self) -> None:
        self.faults = None
        self.events = None

    def read_packed(self, addr: int) -> int:
        # missing the leading observer guard: definition-side violation
        return addr

    def write_packed(self, addr: int) -> int:
        if self.faults is not None or self.events is not None:
            raise PackedPathError("observers attached")
        return addr


class Engine:
    def __init__(self, device: Device) -> None:
        self.device = device

    def hot_write(self, addr: int) -> int:
        # no proof that faults/events are detached: call-side violation
        return self.device.write_packed(addr)
