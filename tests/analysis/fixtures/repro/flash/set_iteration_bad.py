"""Bad: iterating set expressions directly (hash order) in a sim package."""


def walk(items: list[int]) -> list[int]:
    out = []
    for value in {1, 2, 3}:
        out.append(value)
    return out


def listed(items: list[int]) -> list[int]:
    return list(set(items))


def compare(live: list[int], moved: list[int]) -> list[int]:
    return [page for page in set(live) - set(moved)]
