"""Pragma fixture: suppressed hit, next-line pragma, unused pragma."""

import time


def stamp() -> float:
    return time.time()  # lint: ok(determinism.wallclock) -- fixture: host-side timing

def stamp_standalone() -> float:
    # lint: ok(determinism.wallclock) -- fixture: pragma on the comment line above
    return time.time()


def clean(at: float) -> float:
    # lint: ok(determinism.unseeded-random) -- fixture: never fires (unused)
    return at + 1.0
