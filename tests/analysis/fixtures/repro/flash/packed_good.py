"""Good fixture: guarded packed commands, proven-detached call sites."""


class PackedPathError(Exception):
    pass


class GoodDevice:
    def __init__(self) -> None:
        self.faults = None
        self.events = None

    def read_packed(self, addr: int) -> int:
        if self.faults is not None or self.events is not None:
            raise PackedPathError("observers attached")
        return addr

    def write_packed(self, addr: int) -> int:
        """Docstrings before the guard are fine."""
        if self.faults is not None or self.events is not None:
            raise PackedPathError("observers attached")
        return addr


class GoodEngine:
    def __init__(self, device: GoodDevice) -> None:
        self.device = device

    def hot_read(self, addr: int) -> int:
        device = self.device
        if device.faults is None and device.events is None:
            return device.read_packed(addr)
        return addr

    def hot_write(self, addr: int) -> int:
        if self.device.faults is not None or self.device.events is not None:
            return addr  # observable slow path
        return self.device.write_packed(addr)
