"""Good fixture: deterministically seeded, per-use RNG construction."""

import random


def seeded(seed: int) -> random.Random:
    return random.Random(seed)


def derived(base_seed: int, cell: str) -> random.Random:
    # string seeds are hashed with SHA-512 internally: process-stable
    return random.Random(f"{base_seed}:{cell}")


def forked(parent: random.Random) -> random.Random:
    return random.Random(parent.getrandbits(64))
