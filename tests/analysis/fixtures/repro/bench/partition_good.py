"""Good fixture: partition-closed workers.

Workers read only immutable globals and the import-time-populated
registry (every writer of ``REGISTRY`` is called from module top level
only), and thread all mutable state through cell args and results.
"""


class ShardCell:
    def __init__(self, name, fn, args=()):
        self.name = name
        self.fn = fn
        self.args = args


REGISTRY = {}
PAGE_SIZE = 4096  # immutable global: always fine to read


def register(name, factory):
    REGISTRY[name] = factory


def lookup(name):
    return REGISTRY.get(name)


register("echo", str)  # import-time registration: the legal idiom


def run_cell(name, counts):
    factory = lookup(name)
    local = dict(counts)  # worker-local copy, threaded via args
    local[name] = PAGE_SIZE
    return factory(local) if factory is not None else None


def build_cells():
    return [ShardCell("c0", run_cell, ("echo", {}))]
