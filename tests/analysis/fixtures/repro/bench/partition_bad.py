"""Bad fixture: shard-worker code touching module-level mutable state."""


class ShardCell:
    def __init__(self, name, fn, args=()):
        self.name = name
        self.fn = fn
        self.args = args


CACHE = {}
TOTALS = []


def run_cell(name):
    CACHE[name] = 1  # write: per-process dict diverges across shards
    TOTALS.append(name)  # write: mutating method on a module global
    return summarize()


def summarize():
    # read of runtime-written mutable globals, reachable from the worker
    return len(CACHE) + len(TOTALS)


def build_cells():
    return [ShardCell("c0", run_cell, ("a",)), ShardCell("c1", fn=run_cell)]
