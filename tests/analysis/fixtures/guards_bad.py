"""Bad: optional hooks called without a None guard."""


class Engine:
    def __init__(self) -> None:
        self.events = None
        self.faults = None
        self.device = None

    def emit_unguarded(self) -> None:
        self.events.emit("gc_start", victim=3)

    def alias_unguarded(self) -> None:
        bus = self.device.events
        bus.emit("gc_start", victim=3)

    def injector_unguarded(self, op: int) -> None:
        self.faults.on_command("program_page", op)
