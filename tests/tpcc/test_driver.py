"""Tests for the closed-loop driver and metrics."""

import pytest

from repro.flash import TimingModel
from repro.tpcc import ALL_KINDS, Driver, NEW_ORDER, PAYMENT, WorkloadMetrics
from repro.tpcc.transactions import TxnResult

from tests.tpcc.conftest import loaded_db, tpcc_geometry


class TestMetrics:
    def test_record_and_tps(self):
        m = WorkloadMetrics(start_us=0.0)
        m.record(TxnResult(NEW_ORDER, True, 0.0, 500_000.0))
        m.record(TxnResult(PAYMENT, True, 500_000.0, 1_000_000.0))
        assert m.transactions == 2
        assert m.tps == pytest.approx(2.0)
        assert m.response_ms(NEW_ORDER) == pytest.approx(500.0)

    def test_aborts_counted_as_transactions(self):
        m = WorkloadMetrics(start_us=0.0)
        m.record(TxnResult(NEW_ORDER, False, 0.0, 100.0))
        assert m.aborted == 1
        assert m.transactions == 1

    def test_summary_has_all_kinds(self):
        m = WorkloadMetrics()
        summary = m.summary()
        for kind in ALL_KINDS:
            assert f"{kind}_ms" in summary
            assert f"{kind}_count" in summary


class TestDriver:
    def test_runs_requested_transaction_count(self, tpcc_db):
        db, scale = tpcc_db
        driver = Driver(db, scale, terminals=4, seed=1)
        metrics = driver.run(num_transactions=60)
        assert metrics.transactions == 60

    def test_mix_roughly_matches_spec(self, tpcc_db):
        db, scale = tpcc_db
        driver = Driver(db, scale, terminals=4, seed=2)
        metrics = driver.run(num_transactions=400)
        counts = {kind: metrics.per_kind[kind].count for kind in ALL_KINDS}
        assert counts[NEW_ORDER] == pytest.approx(180, abs=60)
        assert counts[PAYMENT] == pytest.approx(172, abs=60)

    def test_duration_stop_condition(self):
        db, scale = loaded_db()
        # real latencies so virtual time advances
        db2, scale2 = loaded_db()
        driver = Driver(db2, scale2, terminals=2, seed=3, think_time_us=1000.0)
        metrics = driver.run(duration_us=200_000.0)
        assert metrics.transactions > 0
        assert metrics.makespan_us <= 400_000.0  # bounded overshoot

    def test_deterministic_given_seed(self):
        db_a, scale = loaded_db()
        db_b, __ = loaded_db()
        m_a = Driver(db_a, scale, terminals=4, seed=5).run(num_transactions=80)
        m_b = Driver(db_b, scale, terminals=4, seed=5).run(num_transactions=80)
        assert m_a.summary() == m_b.summary()

    def test_terminals_spread_over_warehouses(self, tpcc_db):
        db, scale = tpcc_db
        driver = Driver(db, scale, terminals=6, seed=6)
        w_ids = {t.w_id for t in driver.terminals}
        assert w_ids == set(range(1, scale.warehouses + 1))

    def test_invalid_configs_rejected(self, tpcc_db):
        db, scale = tpcc_db
        with pytest.raises(ValueError):
            Driver(db, scale, terminals=0)
        driver = Driver(db, scale, terminals=1)
        with pytest.raises(ValueError):
            driver.run()


class TestDriverWithRealTiming:
    def test_virtual_time_advances_with_io(self):
        from repro.core import traditional_placement
        from repro.db import Database
        from repro.tpcc import load_database, tiny_scale

        geometry = tpcc_geometry()
        db = Database.on_native_flash(
            geometry=geometry,
            placement=traditional_placement(geometry.dies),
            timing=TimingModel(),  # real latencies
            buffer_pages=16,  # small pool -> real flash I/O
        )
        scale = tiny_scale()
        load_database(db, scale, seed=0)
        driver = Driver(db, scale, terminals=4, seed=7)
        metrics = driver.run(num_transactions=50)
        assert metrics.makespan_us > 0
        assert metrics.tps > 0
        assert metrics.response_ms(NEW_ORDER) >= 0
