"""Unit tests for workload metrics (throughput, response times, tails)."""

import pytest

from repro.tpcc import ALL_KINDS, NEW_ORDER, PAYMENT, WorkloadMetrics
from repro.tpcc.transactions import TxnResult


class TestWorkloadMetrics:
    def test_makespan_tracks_latest_completion(self):
        m = WorkloadMetrics(start_us=100.0)
        m.end_us = 100.0
        m.record(TxnResult(NEW_ORDER, True, 100.0, 500.0))
        m.record(TxnResult(PAYMENT, True, 200.0, 300.0))
        assert m.makespan_us == 400.0

    def test_tps_zero_when_no_time_elapsed(self):
        m = WorkloadMetrics()
        assert m.tps == 0.0

    def test_percentiles_reflect_tail(self):
        m = WorkloadMetrics(start_us=0.0)
        for __ in range(99):
            m.record(TxnResult(NEW_ORDER, True, 0.0, 1_000.0))  # 1 ms
        m.record(TxnResult(NEW_ORDER, True, 0.0, 100_000.0))  # 100 ms outlier
        assert m.response_ms(NEW_ORDER) == pytest.approx(1.99, rel=0.01)
        assert m.response_percentile_ms(NEW_ORDER, 0.5) < 2.0
        assert m.response_percentile_ms(NEW_ORDER, 0.995) > 50.0

    def test_summary_includes_p99_per_kind(self):
        m = WorkloadMetrics()
        summary = m.summary()
        for kind in ALL_KINDS:
            assert f"{kind}_p99_ms" in summary

    def test_response_us_property(self):
        result = TxnResult(NEW_ORDER, True, 100.0, 350.0)
        assert result.response_us == 250.0
