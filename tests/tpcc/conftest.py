"""Shared fixtures for TPC-C tests: a tiny loaded database."""

import pytest

from repro.core import figure2_placement, traditional_placement
from repro.db import Database
from repro.flash import FlashGeometry, instant_timing
from repro.tpcc import load_database, tiny_scale


def tpcc_geometry():
    """Enough flash for the tiny TPC-C population with headroom."""
    return FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=64,
        pages_per_block=32,
        page_size=2048,
        oob_size=64,
        max_pe_cycles=1_000_000,
    )


def loaded_db(placement=None, **db_kwargs):
    geometry = tpcc_geometry()
    placement = placement or traditional_placement(geometry.dies)
    db = Database.on_native_flash(
        geometry=geometry,
        placement=placement,
        timing=instant_timing(),
        buffer_pages=256,
        **db_kwargs,
    )
    scale = tiny_scale()
    load_database(db, scale, seed=0)
    return db, scale


@pytest.fixture
def tpcc_db():
    """Freshly loaded tiny database (loading is cheap at this scale)."""
    return loaded_db()


@pytest.fixture
def tpcc_db_figure2():
    geometry = tpcc_geometry()
    return loaded_db(placement=figure2_placement(geometry.dies))
