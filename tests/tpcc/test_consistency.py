"""Tests for the TPC-C consistency conditions (spec clause 3.3)."""

import pytest

from repro.tpcc import Driver
from repro.tpcc.consistency import ConsistencyReport, check_consistency


class TestFreshLoad:
    def test_initial_population_is_consistent(self, tpcc_db):
        db, __ = tpcc_db
        report = check_consistency(db)
        report.raise_if_violated()
        assert report.checked > 0

    def test_report_accumulates_violations(self):
        report = ConsistencyReport()
        assert report.ok
        report.add("something broke")
        assert not report.ok
        with pytest.raises(AssertionError, match="something broke"):
            report.raise_if_violated()


class TestAfterWorkload:
    def test_consistency_holds_after_mixed_transactions(self, tpcc_db):
        db, scale = tpcc_db
        Driver(db, scale, terminals=4, seed=11).run(num_transactions=300)
        check_consistency(db).raise_if_violated()

    def test_consistency_holds_on_figure2_placement(self, tpcc_db_figure2):
        db, scale = tpcc_db_figure2
        Driver(db, scale, terminals=4, seed=12).run(num_transactions=300)
        check_consistency(db).raise_if_violated()

    def test_consistency_detects_corruption(self, tpcc_db):
        """Sanity: the checker actually notices a broken counter."""
        db, scale = tpcc_db
        district = db.table("DISTRICT")
        rid, __, ___ = next(iter(district.scan(0.0)))
        district.update_columns(rid, {"d_next_o_id": 999_999}, 0.0)
        report = check_consistency(db)
        assert not report.ok
        assert any("C1" in v for v in report.violations)
