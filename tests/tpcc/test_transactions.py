"""Tests for the five TPC-C transactions."""

from repro.tpcc import (
    DELIVERY,
    NEW_ORDER,
    ORDER_STATUS,
    PAYMENT,
    STOCK_LEVEL,
    TPCCRandom,
    TransactionExecutor,
)


def executor(tpcc_db):
    db, scale = tpcc_db
    return db, scale, TransactionExecutor(db, scale, TPCCRandom(seed=99))


class TestNewOrder:
    def test_commits_and_advances_order_counter(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        before = {}
        pos = db.table("DISTRICT").schema.position("d_next_o_id")
        for __, row, ___ in db.table("DISTRICT").scan(0.0):
            before[(row[1], row[0])] = row[pos]
        result = ex.new_order_txn(1, 0.0)
        assert result.kind == NEW_ORDER
        if result.committed:
            after = {}
            for __, row, ___ in db.table("DISTRICT").scan(0.0):
                after[(row[1], row[0])] = row[pos]
            assert sum(after.values()) == sum(before.values()) + 1

    def test_creates_order_rows(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        orders_before = db.table("ORDER").row_count
        lines_before = db.table("ORDERLINE").row_count
        committed = 0
        for __ in range(20):
            if ex.new_order_txn(1, 0.0).committed:
                committed += 1
        assert db.table("ORDER").row_count == orders_before + committed
        assert db.table("ORDERLINE").row_count >= lines_before + committed * scale.min_order_lines

    def test_one_percent_rollback_happens(self, tpcc_db):
        __, ___, ex = executor(tpcc_db)
        results = [ex.new_order_txn(1, 0.0) for __ in range(300)]
        aborted = [r for r in results if not r.committed]
        assert 0 < len(aborted) < 30

    def test_rollback_leaves_no_partial_writes(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        # find an aborted run and verify order counts stayed consistent
        for __ in range(400):
            orders_before = db.table("ORDER").row_count
            no_before = db.table("NEW_ORDER").row_count
            result = ex.new_order_txn(1, 0.0)
            if not result.committed:
                assert db.table("ORDER").row_count == orders_before
                assert db.table("NEW_ORDER").row_count == no_before
                return
        raise AssertionError("no rollback in 400 NewOrders (expected ~4)")

    def test_stock_is_updated(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        ytd_pos = db.table("STOCK").schema.position("s_ytd")
        total_before = sum(row[ytd_pos] for __, row, ___ in db.table("STOCK").scan(0.0))
        committed = sum(ex.new_order_txn(1, 0.0).committed for __ in range(10))
        total_after = sum(row[ytd_pos] for __, row, ___ in db.table("STOCK").scan(0.0))
        if committed:
            assert total_after > total_before


class TestPayment:
    def test_updates_ytd_and_history(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        w_pos = db.table("WAREHOUSE").schema.position("w_ytd")
        hist_before = db.table("HISTORY").row_count
        w_before = sum(row[w_pos] for __, row, ___ in db.table("WAREHOUSE").scan(0.0))
        result = ex.payment_txn(1, 0.0)
        assert result.kind == PAYMENT
        assert result.committed
        assert db.table("HISTORY").row_count == hist_before + 1
        w_after = sum(row[w_pos] for __, row, ___ in db.table("WAREHOUSE").scan(0.0))
        assert w_after > w_before

    def test_customer_balance_decreases(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        bal_pos = db.table("CUSTOMER").schema.position("c_balance")
        before = sum(row[bal_pos] for __, row, ___ in db.table("CUSTOMER").scan(0.0))
        for __ in range(5):
            ex.payment_txn(1, 0.0)
        after = sum(row[bal_pos] for __, row, ___ in db.table("CUSTOMER").scan(0.0))
        assert after < before


class TestOrderStatus:
    def test_read_only(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        writes_before = db.store.aggregate_stats()["host_writes"]
        counts_before = (db.table("ORDER").row_count, db.table("CUSTOMER").row_count)
        result = ex.order_status_txn(1, 0.0)
        assert result.kind == ORDER_STATUS
        assert result.committed
        assert (db.table("ORDER").row_count, db.table("CUSTOMER").row_count) == counts_before


class TestDelivery:
    def test_drains_new_orders(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        no_before = db.table("NEW_ORDER").row_count
        result = ex.delivery_txn(1, 0.0)
        assert result.kind == DELIVERY
        assert result.committed
        drained = no_before - db.table("NEW_ORDER").row_count
        assert drained == min(no_before, scale.districts)

    def test_sets_carrier_and_delivery_date(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        ex.delivery_txn(1, 100.0)
        carrier_pos = db.table("ORDER").schema.position("o_carrier_id")
        carriers = [row[carrier_pos] for __, row, ___ in db.table("ORDER").scan(0.0)]
        assert all(1 <= c <= 10 for c in carriers if c != 0) or any(c > 0 for c in carriers)

    def test_delivery_eventually_empties_district(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        for __ in range(scale.initial_orders_per_district + 2):
            ex.delivery_txn(1, 0.0)
        assert db.table("NEW_ORDER").row_count == 0
        # a further delivery is a no-op but still commits (spec 2.7.4.2)
        assert ex.delivery_txn(1, 0.0).committed


class TestStockLevel:
    def test_read_only_and_commits(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        stock_before = db.table("STOCK").row_count
        result = ex.stock_level_txn(1, 1, 0.0)
        assert result.kind == STOCK_LEVEL
        assert result.committed
        assert db.table("STOCK").row_count == stock_before

    def test_time_advances(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        result = ex.stock_level_txn(1, 1, 1000.0)
        assert result.end_us >= 1000.0
        assert result.start_us == 1000.0


class TestConsistencyAfterMixedLoad:
    def test_invariants_hold_after_many_transactions(self, tpcc_db):
        db, scale, ex = executor(tpcc_db)
        rng = TPCCRandom(seed=7)
        t = 0.0
        for i in range(120):
            kind = i % 5
            if kind == 0:
                t = ex.new_order_txn(1, t).end_us
            elif kind == 1:
                t = ex.payment_txn(1, t).end_us
            elif kind == 2:
                t = ex.order_status_txn(1, t).end_us
            elif kind == 3:
                t = ex.delivery_txn(1, t).end_us
            else:
                t = ex.stock_level_txn(1, 1, t).end_us
        # index invariants on the busiest indexes
        for name in ("C_IDX", "O_IDX", "OL_IDX", "NO_IDX", "S_IDX"):
            db.catalog.index(name).btree.check_invariants()
        # region mapping invariants
        db.checkpoint(t)
        db.store.check_consistency()
        # ORDER rows == initial + committed NewOrders is checked indirectly:
        # every ORDER row must be reachable through O_IDX
        o_idx = db.catalog.index("O_IDX").btree
        assert o_idx.entry_count == db.table("ORDER").row_count
