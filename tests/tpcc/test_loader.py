"""Tests for schema creation and the initial population."""

from repro.tpcc import INDEX_DEFS, TABLE_SCHEMAS, ScaleConfig, tiny_scale


class TestSchemaCreation:
    def test_all_tables_and_indexes_exist(self, tpcc_db):
        db, __ = tpcc_db
        for name in TABLE_SCHEMAS:
            assert db.catalog.has_table(name)
        for name, *_ in INDEX_DEFS:
            assert db.catalog.has_index(name)

    def test_index_tables_match(self, tpcc_db):
        db, __ = tpcc_db
        for name, table, columns, unique in INDEX_DEFS:
            info = db.catalog.index(name)
            assert info.table == table
            assert info.columns == columns
            assert info.unique == unique


class TestPopulation:
    def test_cardinalities(self, tpcc_db):
        db, scale = tpcc_db
        assert db.table("WAREHOUSE").row_count == scale.warehouses
        assert db.table("DISTRICT").row_count == scale.warehouses * scale.districts
        assert db.table("CUSTOMER").row_count == scale.customers
        assert db.table("HISTORY").row_count == scale.customers
        assert db.table("ITEM").row_count == scale.items
        assert db.table("STOCK").row_count == scale.stock_rows
        orders = scale.warehouses * scale.districts * scale.initial_orders_per_district
        assert db.table("ORDER").row_count == orders

    def test_open_orders_have_new_order_rows(self, tpcc_db):
        db, scale = tpcc_db
        expected_open = max(1, int(scale.initial_orders_per_district * 0.3))
        per_district = expected_open
        districts = scale.warehouses * scale.districts
        assert db.table("NEW_ORDER").row_count == per_district * districts

    def test_orderline_counts_match_orders(self, tpcc_db):
        db, scale = tpcc_db
        total_lines = 0
        ol_cnt_pos = db.table("ORDER").schema.position("o_ol_cnt")
        for __, row, ___ in db.table("ORDER").scan(0.0):
            total_lines += row[ol_cnt_pos]
        assert db.table("ORDERLINE").row_count == total_lines

    def test_district_next_o_id(self, tpcc_db):
        db, scale = tpcc_db
        pos = db.table("DISTRICT").schema.position("d_next_o_id")
        for __, row, ___ in db.table("DISTRICT").scan(0.0):
            assert row[pos] == scale.initial_orders_per_district + 1

    def test_customers_reachable_by_id_index(self, tpcc_db):
        db, scale = tpcc_db
        table = db.table("CUSTOMER")
        for c_id in (1, scale.customers_per_district):
            row, __ = table.lookup("C_IDX", (1, 1, c_id), 0.0)
            assert row is not None
            assert row[0] == c_id

    def test_customers_reachable_by_name_index(self, tpcc_db):
        db, scale = tpcc_db
        table = db.table("CUSTOMER")
        index = table.index("C_NAME_IDX")
        from repro.tpcc import TPCCRandom

        rng = TPCCRandom()
        last = rng.last_name(0)  # customer 1's deterministic name
        entries, __ = index.btree.range_scan(
            (1, 1, last, ""), (1, 1, last, "\x7f" * 16), 0.0
        )
        assert entries

    def test_stock_reachable_via_s_idx(self, tpcc_db):
        db, scale = tpcc_db
        row, __ = db.table("STOCK").lookup("S_IDX", (1, scale.items), 0.0)
        assert row is not None

    def test_load_lands_on_flash_after_checkpoint(self, tpcc_db):
        db, __ = tpcc_db
        stats = db.store.aggregate_stats()
        assert stats["host_writes"] > 0

    def test_scale_validation(self):
        import pytest

        with pytest.raises(ValueError):
            ScaleConfig(warehouses=0)
        with pytest.raises(ValueError):
            ScaleConfig(min_order_lines=9, max_order_lines=5)

    def test_tiny_scale_consistent(self):
        scale = tiny_scale()
        assert scale.customers == 1 * 2 * 8
        assert scale.stock_rows == 40
