"""Unit tests for TPC-C randomness."""

from repro.tpcc import LAST_NAME_SYLLABLES, TPCCRandom


class TestNURand:
    def test_values_in_range(self):
        rng = TPCCRandom(seed=1)
        for __ in range(2000):
            v = rng.nurand(1023, 1, 3000, 259)
            assert 1 <= v <= 3000

    def test_distribution_is_skewed(self):
        # NURand concentrates mass: top-decile ids should be hit far more
        # often than uniform would predict
        rng = TPCCRandom(seed=2)
        counts = {}
        n = 20_000
        for __ in range(n):
            v = rng.customer_id(3000)
            counts[v] = counts.get(v, 0) + 1
        hot = sorted(counts.values(), reverse=True)
        top_300 = sum(hot[:300])
        assert top_300 > n * 0.2  # uniform would give ~10%

    def test_deterministic_given_seed(self):
        a = [TPCCRandom(seed=5).nurand(8191, 1, 100_000, 7911) for __ in range(5)]
        b = [TPCCRandom(seed=5).nurand(8191, 1, 100_000, 7911) for __ in range(5)]
        assert a == b


class TestLastNames:
    def test_syllable_composition(self):
        rng = TPCCRandom()
        assert rng.last_name(0) == "BARBARBAR"
        assert rng.last_name(371) == "PRICALLYOUGHT"
        assert rng.last_name(999) == "EINGEINGEING"

    def test_all_names_from_syllables(self):
        rng = TPCCRandom(seed=3)
        for __ in range(100):
            name = rng.customer_last_name_run(3000)
            rest = name
            parts = 0
            while rest:
                for syllable in LAST_NAME_SYLLABLES:
                    if rest.startswith(syllable):
                        rest = rest[len(syllable) :]
                        parts += 1
                        break
                else:
                    raise AssertionError(f"unparseable name {name}")
            assert parts == 3

    def test_load_names_cover_small_population(self):
        rng = TPCCRandom(seed=4)
        seen = {rng.customer_last_name_load(8) for __ in range(500)}
        expected = {rng.last_name(i) for i in range(8)}
        assert seen <= expected


class TestStringsAndPermutations:
    def test_astring_length_bounds(self):
        rng = TPCCRandom(seed=5)
        for __ in range(100):
            s = rng.astring(3, 9)
            assert 3 <= len(s) <= 9

    def test_nstring_is_numeric(self):
        rng = TPCCRandom(seed=6)
        assert rng.nstring(8, 8).isdigit()

    def test_zip_code_format(self):
        rng = TPCCRandom(seed=7)
        z = rng.zip_code()
        assert len(z) == 9
        assert z.endswith("11111")

    def test_permutation_is_complete(self):
        rng = TPCCRandom(seed=8)
        perm = rng.permutation(100)
        assert sorted(perm) == list(range(1, 101))

    def test_data_string_sometimes_original(self):
        rng = TPCCRandom(seed=9)
        hits = sum("ORIGINAL" in rng.data_string(20, 50) for __ in range(2000))
        assert 100 < hits < 350  # ~10%

    def test_decimal_bounds(self):
        rng = TPCCRandom(seed=10)
        for __ in range(100):
            v = rng.decimal(1.0, 5000.0)
            assert 1.0 <= v <= 5000.0
