"""Redo logging on regions: durability meets placement.

The write-ahead log is the purest cold append stream a DBMS produces —
written once, read only at recovery, never updated.  Under NoFTL it is a
first-class object the DBA can place: this example runs a logged workload,
"crashes", restores from the initial state, and replays the log; then it
shows where the log physically landed.

Run:  python examples/write_ahead_log.py
"""

import random

from repro.core import figure2_placement
from repro.db import Database, replay_log
from repro.flash import paper_geometry


def build(wal: bool) -> Database:
    db = Database.on_native_flash(
        geometry=paper_geometry(blocks_per_plane=4),
        placement=figure2_placement(64),
        buffer_pages=256,
        wal=wal,
    )
    db.execute("CREATE TABLE accounts (acct INT, owner CHAR(12), balance INT)")
    db.create_index("accounts_pk", "accounts", ["acct"], unique=True)
    return db


def main() -> None:
    rng = random.Random(11)
    source = build(wal=True)
    accounts = source.table("accounts")
    t = 0.0
    rids = []
    for acct in range(200):
        rid, t = accounts.insert((acct, f"owner{acct}", 1000), t)
        rids.append(rid)
    for i in range(2000):
        pick = rng.randrange(len(rids))
        rids[pick], t = accounts.update_columns(
            rids[pick], {"balance": 1000 + i}, t
        )
    t = source.wal.flush(t)
    print(f"logged {source.wal.records_written} records "
          f"({source.wal.flushed_pages} log pages on flash)")

    # --- crash & recover: fresh database, same schema, replay the log ------
    target = build(wal=False)
    applied, t = replay_log(target, source.wal, t)
    print(f"replayed {applied} records into the restored database")

    src_rows = sorted(r for __, r, ___ in source.table("accounts").scan(t))
    dst_rows = sorted(r for __, r, ___ in target.table("accounts").scan(t))
    assert src_rows == dst_rows
    print(f"verified: {len(dst_rows)} rows identical after replay")

    ts = source.catalog.tablespace("ts_WAL")
    print(f"\nthe log lives in tablespace {ts.name!r} -> region {ts.region!r}")
    print("a DBA could give it a dedicated region: the log never mixes with")
    print("update-hot pages, so its blocks are never GC victims.")


if __name__ == "__main__":
    main()
