"""Quickstart: the paper's Section 2 example, end to end.

Creates a native-flash database, then runs the poster's DDL verbatim —
region, tablespace, table — inserts some rows, reads them back and shows
where they physically landed.

Run:  python examples/quickstart.py
"""

from repro.db import Database
from repro.flash import paper_geometry


def main() -> None:
    # a native flash device: 64 dies over 4 channels, 4 KiB pages
    db = Database.on_native_flash(geometry=paper_geometry(blocks_per_plane=4))

    # the paper's DDL (Section 2), plus the DIES extension to pick a size
    db.execute_script(
        """
        CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M, DIES=8);
        CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT SIZE 128K);
        CREATE TABLE T (t_id NUMBER(3), payload CHAR(64)) TABLESPACE tsHotTbl
        """
    )

    table = db.table("T")
    t = 0.0
    rids = []
    for i in range(500):
        rid, t = table.insert((i, f"row number {i}"), t)
        rids.append(rid)
    t = db.checkpoint(t)  # flush the buffer pool so everything is on flash

    row, t = table.read(rids[42], t)
    print(f"read back: {row}")

    region = db.store.region("rgHotTbl")
    print(f"\nregion {region.name!r}:")
    print(f"  dies            : {region.dies}")
    print(f"  channels        : {sorted(region.channels_used())}")
    print(f"  capacity (pages): {region.capacity_pages()}")
    print(f"  used (pages)    : {region.used_pages()}")
    print(f"  host writes     : {region.stats.host_writes}")

    print("\nflash device:")
    stats = db.device.stats
    print(f"  page programs   : {stats.programs}")
    print(f"  page reads      : {stats.reads}")
    print(f"  block erases    : {stats.erases}")
    print(f"  virtual time    : {db.now / 1000:.1f} ms")

    per_die = [
        (d, stats.programs_per_die[d]) for d in region.dies
    ]
    print(f"  programs per die: {per_die}")
    print("\nNote how writes striped across the region's dies - that is the")
    print("I/O parallelism the paper's placement exploits.")


if __name__ == "__main__":
    main()
