"""Watching GC interference, op by op.

The paper's complaint about FTL SSDs: "unpredictable performance caused by
the background FTL processes (wear-levelling and garbage collection)".
This example traces every flash command during a churn workload and
renders per-die timelines plus a queueing post-mortem, making the
interference visible instead of inferred.

Run:  python examples/gc_interference.py
"""

import heapq
import random

from repro.bench.timeline import gc_interference_report, render_timeline
from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry, FlashTracer


def main() -> None:
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=10,
        pages_per_block=32,
        page_size=4096,
        oob_size=64,
    )
    store = NoFTLStore.create(geometry)
    region = store.create_region(RegionConfig(name="rg"), num_dies=4)
    pages = region.allocate(int(region.capacity_pages() * 0.75))

    t = 0.0
    for p in pages:  # fill to 75% so GC has to work
        t = region.write(p, b"seed", t)

    tracer = FlashTracer.attach(store.device)
    rng = random.Random(4)
    reads = writes = 0
    window_start = t
    # eight concurrent closed-loop streams: reads land while GC owns dies
    clocks = [(t, i) for i in range(8)]
    heapq.heapify(clocks)
    for __ in range(3000):
        now, stream = heapq.heappop(clocks)
        if rng.random() < 0.5:
            __, done = region.read(rng.choice(pages), now)
            reads += 1
        else:
            done = region.write(rng.choice(pages), b"update", now)
            writes += 1
        t = max(t, done)
        heapq.heappush(clocks, (done, stream))
    tracer.detach()

    print(f"{reads} reads + {writes} writes; "
          f"{region.stats.gc_erases} GC erases, {region.stats.gc_copybacks} copybacks\n")
    # zoom into the densest 30 ms of the run
    mid = window_start + (t - window_start) / 2
    events = tracer.between(mid, mid + 30_000)
    print(render_timeline(events, start_us=mid, end_us=mid + 30_000, width=76))
    print()
    print(gc_interference_report(tracer, top=5))
    print("\nE/C runs are GC reclaiming a die; note reads stacking up behind them -")
    print("the unpredictability the paper attributes to background flash management.")


if __name__ == "__main__":
    main()
