"""The paper's motivation: what the FTL's black box costs.

Runs one skewed write workload against four storage stacks — a
page-mapping FTL, a resource-limited DFTL, NoFTL with one region, and
NoFTL with hot/cold regions — and prints the GC work and sustained
throughput of each.

Run:  python examples/ftl_vs_noftl.py
"""

from repro.bench import SyntheticConfig, run_ftl_synthetic, run_noftl_synthetic


def main() -> None:
    config = SyntheticConfig(writes=15_000, utilization=0.65)
    results = [
        ("FTL (page mapping)", run_ftl_synthetic(config, ftl="page")),
        ("FTL (DFTL, small CMT)", run_ftl_synthetic(config, ftl="dftl", cmt_entries=256)),
        ("NoFTL, one region", run_noftl_synthetic(config, separated=False)),
        ("NoFTL, hot/cold regions", run_noftl_synthetic(config, separated=True)),
    ]
    print(f"{'stack':<24} {'copybacks':>10} {'erases':>8} {'WA':>6} {'writes/s':>10}")
    for label, r in results:
        print(
            f"{label:<24} {r.copybacks:>10,} {r.erases:>8,} "
            f"{r.write_amplification:>6.2f} {r.writes_per_second:>10,.0f}"
        )
    print(
        "\nDFTL pays translation I/O for its tiny mapping cache (the paper's"
        "\n'limited on-device resources'); NoFTL regions exploit DBMS knowledge"
        "\nthe FTL can never have."
    )


if __name__ == "__main__":
    main()
