"""Region lifecycle: dynamic resizing and global wear levelling.

Shows the administration surface the paper emphasises: regions are created
with familiar DDL, can grow and shrink while live ("the number of dies in
each region ... is dynamic and can change over time"), and the region
manager rebalances wear across regions by swapping dies.

Run:  python examples/region_management.py
"""

import random

from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry


def show(store: NoFTLStore, title: str) -> None:
    print(f"\n{title}")
    for row in store.describe():
        print(
            f"  {row['name']:10} dies={row['dies']} used={row['used_pages']}/{row['capacity_pages']} pages"
        )
    print(f"  free dies: {store.manager.free_dies()}")


def main() -> None:
    geometry = FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=32,
        pages_per_block=16,
        page_size=2048,
        oob_size=64,
    )
    store = NoFTLStore.create(geometry, global_wl_threshold=30)

    archive = store.create_region(RegionConfig(name="rgArchive"), num_dies=4)
    working = store.create_region(RegionConfig(name="rgWorking"), num_dies=3)
    show(store, "initial layout (1 free die held back)")

    # fill the archive with cold data
    t = 0.0
    # fill to 35%: leaves room for the resize and die swap below
    cold = archive.allocate(int(archive.capacity_pages() * 0.35))
    for p in cold:
        t = archive.write(p, b"cold record", t)

    # the working set churns hard
    hot = working.allocate(48)
    rng = random.Random(1)
    for __ in range(30_000):
        t = working.write(rng.choice(hot), b"hot record", t)
    show(store, "after churn")
    print(f"  wear imbalance: {store.manager.wear_imbalance():.1f} erases/die")

    # grow the working region with a free die, then shrink the archive
    store.manager.add_dies("rgWorking", 1)
    t = store.manager.remove_die("rgArchive", archive.dies[0], at=t)
    show(store, "after resize (grew rgWorking, evacuated one archive die)")

    # global wear levelling swaps a worn working die with a fresh archive die
    swaps_before = store.manager.wl_swaps
    t = store.global_wear_level(t)
    print(f"\nglobal wear levelling performed {store.manager.wl_swaps - swaps_before} die swap(s)")
    print(f"  wear imbalance now: {store.manager.wear_imbalance():.1f} erases/die")

    # data is intact through all of it
    sample = rng.sample(cold, 20)
    assert all(archive.read(p, t)[0] == b"cold record" for p in sample)
    print("\narchive data verified intact after evacuation and wear levelling.")


if __name__ == "__main__":
    main()
