"""Crash recovery: rebuilding host-side state from page metadata.

Under NoFTL the address translation lives in DBMS memory — so what happens
on a crash?  The native flash interface's *page metadata* command (paper,
Figure 1) is the answer: every programmed page carries its logical key and
a write sequence number in the OOB area.  This example writes data, kills
the host state, builds a fresh store over the same flash, and measures the
recovery scan.

Run:  python examples/crash_recovery.py
"""

import random

from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry


def build_store(device=None):
    geometry = FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=32,
        page_size=4096,
        oob_size=64,
    )
    if device is None:
        store = NoFTLStore.create(geometry)
    else:
        store = NoFTLStore(device)
    store.create_region(RegionConfig(name="rgHot"), num_dies=2, dies=[0, 1])
    store.create_region(RegionConfig(name="rgCold"), num_dies=6, dies=[2, 3, 4, 5, 6, 7])
    return store


def main() -> None:
    store = build_store()
    rng = random.Random(3)
    payloads = {}
    t = 0.0
    for name in ("rgHot", "rgCold"):
        region = store.region(name)
        pages = region.allocate(200)
        for __ in range(3000):  # overwrites force GC: stale versions abound
            rpn = rng.choice(pages)
            payload = f"{name}:{rpn}:{rng.randrange(10**6)}".encode()
            t = region.write(rpn, payload, t)
            payloads[(name, rpn)] = payload
    programs = store.device.stats.programs
    print(f"wrote {len(payloads)} live pages ({programs} total programs, "
          f"{store.device.stats.erases} erases along the way)")

    # --- crash: all host-side state is gone ---------------------------------
    recovered = build_store(device=store.device)
    scan_start = t
    t = recovered.recover(at=t)
    print(f"recovery scan took {(t - scan_start) / 1000:.1f} ms of simulated time "
          f"({store.device.stats.reads} OOB/page reads total)")

    checked = 0
    for (name, rpn), payload in payloads.items():
        data, t = recovered.read(name, rpn, t)
        assert data == payload, f"lost {name}:{rpn}"
        checked += 1
    recovered.check_consistency()
    print(f"verified all {checked} live pages carry their latest version.")
    print("stale versions were recognised by sequence number and left as garbage.")


if __name__ == "__main__":
    main()
