"""Atomic multi-page writes: NoFTL advantage (iv), demonstrated.

The paper lists among NoFTL's advantages "(iv) direct control over the
out-of-place updates, which allows implementing short atomic writes
without additional overhead".  On an FTL SSD a multi-page atomic update
needs a journal or a double-write buffer (extra writes!); under NoFTL the
new versions are simply programmed out-of-place and the mapping flips at
the end — a torn batch is recognised at recovery by its page-count
metadata and discarded wholesale.

Run:  python examples/atomic_writes.py
"""

from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry, PageMetadata, PhysicalPageAddress


def build(device=None):
    geometry = FlashGeometry(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=16,
        page_size=2048,
        oob_size=64,
    )
    store = NoFTLStore.create(geometry) if device is None else NoFTLStore(device)
    store.create_region(RegionConfig(name="rg"), num_dies=4, dies=[0, 1, 2, 3])
    return store


def main() -> None:
    store = build()
    region = store.region("rg")
    pages = region.allocate(4)
    t = 0.0
    for p in pages:
        t = region.write(p, b"balance=100", t)
    print("initial state written: 4 account pages, balance=100 each")

    # a committed atomic transfer across all four pages
    t = region.write_atomic([(p, b"balance=250") for p in pages], t)
    print("atomic update committed (4 pages, no journal, no double write)")

    # --- now simulate a crash HALFWAY through another atomic batch ---------
    engine = region.engine
    atomic_id = store.device.next_sequence()
    for p in pages[:2]:  # only 2 of the 4 pages reach flash
        die = engine._pick_die()
        frontier = engine._frontier(engine._user_frontier, die)
        ppa = PhysicalPageAddress(die, frontier.block, frontier.written)
        meta = PageMetadata(
            lpn=p,
            seq=store.device.next_sequence(),
            obj_id=region.region_id,
            extra={"atomic_id": atomic_id, "atomic_size": 4},
        )
        store.device.program_page(ppa, b"balance=999", meta, at=t)
        frontier.note_write(frontier.written, t)
    print("CRASH: a second atomic batch died after 2 of its 4 pages")

    recovered = build(device=store.device)
    end = recovered.recover(at=t)
    print(f"recovery scan finished ({(end - t) / 1000:.1f} ms simulated)")
    values = {recovered.read("rg", p, end)[0] for p in pages}
    assert values == {b"balance=250"}, values
    print("every page shows balance=250: the committed batch survived,")
    print("the torn batch rolled back wholesale. No 999s, no mixed state.")


if __name__ == "__main__":
    main()
