"""Hot/cold separation: the mechanism behind the paper's headline result.

A small "scorching" table and a large cold table share one device.  Run
them (a) mixed in a single region, (b) separated into two regions — same
data, same traffic, same flash.  Watch GC copybacks collapse and
throughput rise with separation.

Run:  python examples/hot_cold_separation.py
"""

import random

from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry


def run(separated: bool, writes: int = 20_000) -> dict:
    geometry = FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=32,
        page_size=4096,
        oob_size=64,
    )
    store = NoFTLStore.create(geometry)
    if separated:
        hot_region = store.create_region(RegionConfig(name="rgHot"), num_dies=2)
        cold_region = store.create_region(RegionConfig(name="rgCold"), num_dies=6)
    else:
        hot_region = cold_region = store.create_region(RegionConfig(name="rgAll"), num_dies=8)

    # 70% utilization: 1/8 of the data is hot, receiving 90% of the writes
    regions = {id(r): r for r in (hot_region, cold_region)}
    total_safe = sum(r.engine.safe_capacity_pages() for r in regions.values())
    live = int(total_safe * 0.7)
    hot_pages = hot_region.allocate(live // 8)
    cold_pages = cold_region.allocate(live - live // 8)

    payload = b"x" * 512
    t = 0.0
    for p in hot_pages:
        t = hot_region.write(p, payload, t)
    for p in cold_pages:
        t = cold_region.write(p, payload, t)

    rng = random.Random(7)
    start = t
    base_cb = sum(r.stats.gc_copybacks for r in store.regions())
    base_er = sum(r.stats.gc_erases for r in store.regions())
    for __ in range(writes):
        if rng.random() < 0.9:
            t = hot_region.write(rng.choice(hot_pages), payload, t)
        else:
            t = cold_region.write(rng.choice(cold_pages), payload, t)
    return {
        "copybacks": sum(r.stats.gc_copybacks for r in store.regions()) - base_cb,
        "erases": sum(r.stats.gc_erases for r in store.regions()) - base_er,
        "writes_per_s": writes / ((t - start) / 1e6),
    }


def main() -> None:
    mixed = run(separated=False)
    separated = run(separated=True)
    print(f"{'':14} {'mixed':>12} {'separated':>12} {'ratio':>8}")
    for key in ("copybacks", "erases", "writes_per_s"):
        ratio = separated[key] / mixed[key] if mixed[key] else float('nan')
        print(f"{key:14} {mixed[key]:>12,.0f} {separated[key]:>12,.0f} {ratio:>7.2f}x")
    print(
        "\nSeparated placement keeps cold pages out of GC victims: the paper's"
        "\n'less erase operations and thus better Flash longevity' in miniature."
    )


if __name__ == "__main__":
    main()
