"""TPC-C on two placements: a pocket-sized version of the paper's Figure 3.

Loads a small TPC-C database twice — once with traditional single-pool
placement, once with the paper's 6-region Figure 2 configuration — runs
the same transaction stream against each, and prints the comparison.

This is the quick demo; the calibrated reproduction lives in
benchmarks/bench_fig3_tpcc.py (see EXPERIMENTS.md for recorded results).

Run:  python examples/tpcc_demo.py            (~1-2 minutes)
"""

from repro.bench import TPCCExperimentConfig, figure3_table, run_tpcc_experiment
from repro.core import figure2_placement, traditional_placement
from repro.flash import paper_geometry
from repro.tpcc import ScaleConfig


def main() -> None:
    geometry = paper_geometry(blocks_per_plane=5, pages_per_block=32)
    scale = ScaleConfig(
        warehouses=2,
        districts=10,
        customers_per_district=150,
        items=3000,
        initial_orders_per_district=40,
    )
    common = dict(
        geometry=geometry,
        scale=scale,
        num_transactions=3000,
        terminals=8,
        buffer_pages=768,
        flusher_interval=256,
    )
    print("running traditional placement ...")
    traditional = run_tpcc_experiment(
        TPCCExperimentConfig(name="traditional", placement=traditional_placement(64), **common)
    )
    print("running figure-2 multi-region placement ...")
    regions = run_tpcc_experiment(
        TPCCExperimentConfig(name="figure2", placement=figure2_placement(64), **common)
    )
    print()
    print(figure3_table(traditional, regions))
    print("\nper-region view (figure2):")
    for name, stats in regions.per_region.items():
        print(
            f"  {name:14} host R/W = {stats['host_reads']:7.0f}/{stats['host_writes']:7.0f}"
            f"   GC copybacks = {stats['gc_copybacks']:6.0f}   erases = {stats['gc_erases']:5.0f}"
        )


if __name__ == "__main__":
    main()
