"""The placement advisor: the paper's methodology, mechanised.

The authors built Figure 2 by hand from their knowledge of TPC-C's access
patterns.  The DBMS already has that knowledge — this example profiles a
short TPC-C run, feeds the measured per-object statistics to the advisor,
and prints the placement it derives, next to the paper's hand-built one.

Run:  python examples/placement_advisor.py   (~1 minute)
"""

from repro.bench import TPCCExperimentConfig, build_database
from repro.core import FIGURE2_GROUPS, suggest_placement, traditional_placement
from repro.flash import paper_geometry
from repro.tpcc import Driver, ScaleConfig, load_database


def main() -> None:
    geometry = paper_geometry(blocks_per_plane=5, pages_per_block=32)
    scale = ScaleConfig(
        warehouses=2,
        districts=10,
        customers_per_district=150,
        items=3000,
        initial_orders_per_district=40,
    )
    config = TPCCExperimentConfig(
        name="profile",
        placement=traditional_placement(64),
        geometry=geometry,
        scale=scale,
        num_transactions=1500,
        terminals=8,
        buffer_pages=768,
        flusher_interval=256,
    )
    print("profiling 1500 TPC-C transactions under traditional placement ...")
    db = build_database(config)
    t = load_database(db, scale, seed=42)
    Driver(db, scale, terminals=8, seed=42).run(num_transactions=1500, start_us=t)

    stats = sorted(db.object_stats(), key=lambda s: s.update_density)
    print(f"\n{'object':<14} {'pages':>6} {'reads':>8} {'writes':>8} {'writes/page':>12}")
    for s in stats:
        print(f"{s.name:<14} {s.size_pages:>6} {s.reads:>8} {s.writes:>8} {s.update_density:>12.1f}")

    safe_per_die = (geometry.blocks_per_die - 5) * geometry.pages_per_block
    placement = suggest_placement(
        stats, total_dies=64, max_regions=6, safe_pages_per_die=safe_per_die, headroom=1.6
    )
    print("\nadvised placement (cluster by update density, dies by size & I/O rate):")
    for spec in placement.specs:
        print(f"  {spec.config.name:<12} {spec.num_dies:>2} dies  <- {', '.join(spec.objects)}")

    print("\nthe paper's hand-built Figure 2, for comparison:")
    for name, dies, objects in FIGURE2_GROUPS:
        print(f"  {name:<12} {dies:>2} dies  <- {', '.join(objects)}")
    print(
        "\nSame qualitative structure: scorching WAREHOUSE/DISTRICT isolated, the"
        "\nappend streams separated from update-hot tables, read-mostly data apart."
    )


if __name__ == "__main__":
    main()
