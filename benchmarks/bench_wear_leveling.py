"""Ablation: flash longevity — wear levelling and erase-count balance.

Section 3 claims reduced write amplification "leads to ... better
longevity of the Flash devices".  Two measurements:

1. intra-region static WL on/off under skewed writes: erase-count spread
   (max - min per block) narrows with WL at a small relocation cost;
2. cross-region global WL: a scorching region and a cold region diverge in
   die wear until the manager swaps dies between them.
"""

import random

from conftest import bench_mode, run_once

from repro.bench import render_series, save_report
from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry, instant_timing


def small_geometry():
    return FlashGeometry(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=32,
        pages_per_block=16,
        page_size=2048,
        oob_size=64,
        max_pe_cycles=10_000_000,
    )


def run_static_wl(threshold, writes, seed=4):
    store = NoFTLStore.create(small_geometry(), timing=instant_timing())
    region = store.create_region(
        RegionConfig(name="rg", wear_level_threshold=threshold), num_dies=4
    )
    pages = region.allocate(int(region.capacity_pages() * 0.6))
    rng = random.Random(seed)
    hot = pages[: max(1, len(pages) // 10)]
    payload = b"w" * 256
    t = 0.0
    for p in pages:
        t = region.write(p, payload, t)
    for __ in range(writes):
        target = rng.choice(hot) if rng.random() < 0.95 else rng.choice(pages)
        t = region.write(target, payload, t)
    counts = [
        blk.erase_count for d in region.engine.dies for blk in store.device.dies[d].blocks
    ]
    return {
        "spread": max(counts) - min(counts),
        "max": max(counts),
        "mean": sum(counts) / len(counts),
        "wl_moves": region.stats.wl_moves,
    }


def run_global_wl(threshold, writes, seed=5):
    store = NoFTLStore.create(
        small_geometry(), timing=instant_timing(), global_wl_threshold=threshold
    )
    hot = store.create_region(RegionConfig(name="rgHot"), num_dies=2)
    cold = store.create_region(RegionConfig(name="rgCold"), num_dies=2)
    hot_pages = hot.allocate(32)
    cold_pages = cold.allocate(int(cold.capacity_pages() * 0.5))
    payload = b"w" * 256
    t = 0.0
    for p in cold_pages:
        t = cold.write(p, payload, t)
    rng = random.Random(seed)
    swaps_over_time = []
    for i in range(writes):
        t = hot.write(rng.choice(hot_pages), payload, t)
        if i % 2000 == 1999:
            t = store.global_wear_level(t)
            swaps_over_time.append(store.manager.wl_swaps)
    return store.manager.wl_swaps, store.manager.wear_imbalance()


def sweep():
    writes = 60_000 if bench_mode() == "full" else 20_000
    no_wl = run_static_wl(None, writes)
    with_wl = run_static_wl(8, writes)
    swaps, residual = run_global_wl(threshold=50, writes=writes)
    return no_wl, with_wl, swaps, residual


def test_wear_leveling(benchmark):
    no_wl, with_wl, swaps, residual = run_once(benchmark, sweep)

    # static WL narrows the per-block wear spread at some relocation cost
    assert with_wl["wl_moves"] > 0
    assert no_wl["wl_moves"] == 0
    assert with_wl["spread"] < no_wl["spread"]
    # and the device's most-worn block wears slower
    assert with_wl["max"] <= no_wl["max"]
    # cross-region divergence triggers die swaps
    assert swaps > 0

    report = render_series(
        "Wear levelling ablation (95%-skewed writes)",
        ["config", "erase spread", "max erases", "mean erases", "WL moves"],
        [
            ["no WL", no_wl["spread"], no_wl["max"], round(no_wl["mean"], 1), no_wl["wl_moves"]],
            ["static WL(8)", with_wl["spread"], with_wl["max"], round(with_wl["mean"], 1), with_wl["wl_moves"]],
        ],
    ) + f"\n\nglobal WL: {swaps} die swap(s), residual imbalance {residual:.1f} erases"
    save_report("wear_leveling", report)
