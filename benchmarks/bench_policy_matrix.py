"""The policy lab's main product: GC policy x workload matrix.

Every registered GC victim-selection policy (including the learned
linear scorer) runs the same workloads on the same device, and the
matrix reports the numbers the paper argues about — write amplification,
GC erases, GC copybacks — plus simulated throughput.  Workloads:

* ``uniform``  — one update class, uniform traffic: greedy's best case.
* ``hotcold``  — the canonical 90/10 hot/cold mix (mixed placement, so
  victim choice is what separates the policies).
* ``tpcc``     — the full TPC-C stack on the page-mapping FTL
  (``full`` mode only; throughput is committed transactions/s).

Results go to ``BENCH_policy_matrix.json`` at the repo root.
``REPRO_BENCH_MODE=full`` scales the runs up; the CI smoke job narrows
the matrix via ``REPRO_POLICY_MATRIX_POLICIES`` /
``REPRO_POLICY_MATRIX_WORKLOADS`` (comma-separated lists).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))  # for conftest helpers

from conftest import bench_mode

from repro.bench import SyntheticConfig, render_series, run_noftl_synthetic
from repro.bench.experiment import TPCCExperimentConfig, run_tpcc_experiment
from repro.bench.synthetic import HOT_COLD_CLASSES, ObjectClass
from repro.flash.geometry import paper_geometry
from repro.policies import available_gc_policies
from repro.tpcc.schema import bench_scale

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_policy_matrix.json"

#: single-class uniform-update workload — no hot/cold structure at all
UNIFORM_CLASSES = (ObjectClass("uniform", space_share=1.0, traffic_share=1.0),)


def _env_list(name: str, default: list[str]) -> list[str]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return [item.strip() for item in raw.split(",") if item.strip()]


def matrix_policies() -> list[str]:
    return _env_list("REPRO_POLICY_MATRIX_POLICIES", available_gc_policies())


def matrix_workloads() -> list[str]:
    default = ["uniform", "hotcold"]
    if bench_mode() == "full":
        default.append("tpcc")
    return _env_list("REPRO_POLICY_MATRIX_WORKLOADS", default)


def run_synthetic_cell(policy: str, classes, writes: int) -> dict[str, float]:
    config = SyntheticConfig(classes=classes, writes=writes, gc_policy=policy)
    result = run_noftl_synthetic(config, separated=False)
    return {
        "write_amplification": round(result.write_amplification, 4),
        "erases": float(result.erases),
        "copybacks": float(result.copybacks),
        "tps": round(result.writes_per_second, 1),  # simulated host writes/s
    }


def run_tpcc_cell(policy: str, transactions: int) -> dict[str, float]:
    config = TPCCExperimentConfig(
        name=f"tpcc-{policy}",
        geometry=paper_geometry(blocks_per_plane=5, pages_per_block=32),
        scale=bench_scale(1),
        num_transactions=transactions,
        gc_policy=policy,
    )
    result = run_tpcc_experiment(config)
    host_writes = result.row("host_writes")
    copybacks = result.row("gc_copybacks")
    wa = 1.0 + copybacks / host_writes if host_writes else 0.0
    return {
        "write_amplification": round(wa, 4),
        "erases": float(result.row("gc_erases")),
        "copybacks": float(copybacks),
        "tps": round(result.row("tps"), 1),  # committed transactions/s
    }


def run_matrix() -> dict:
    mode = bench_mode()
    writes = 40_000 if mode == "full" else 8_000
    transactions = 2_000 if mode == "full" else 300
    policies = matrix_policies()
    workloads = matrix_workloads()
    cells: dict[str, dict[str, dict[str, float]]] = {}
    for workload in workloads:
        cells[workload] = {}
        for policy in policies:
            if workload == "uniform":
                cell = run_synthetic_cell(policy, UNIFORM_CLASSES, writes)
            elif workload == "hotcold":
                cell = run_synthetic_cell(policy, HOT_COLD_CLASSES, writes)
            elif workload == "tpcc":
                cell = run_tpcc_cell(policy, transactions)
            else:
                raise ValueError(f"unknown workload {workload!r}")
            cells[workload][policy] = cell
    result = {
        "schema": "repro.bench.policy_matrix/v1",
        "mode": mode,
        "policies": policies,
        "workloads": workloads,
        "synthetic_writes": writes,
        "tpcc_transactions": transactions if "tpcc" in workloads else 0,
        "cells": cells,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def render_matrix(result: dict) -> str:
    rows = []
    for workload in result["workloads"]:
        for policy in result["policies"]:
            cell = result["cells"][workload][policy]
            rows.append(
                [
                    f"{workload}/{policy}",
                    int(cell["copybacks"]),
                    int(cell["erases"]),
                    round(cell["write_amplification"], 2),
                    cell["tps"],
                ]
            )
    return render_series(
        "GC policy matrix (repro.policies registry)",
        ["workload/policy", "GC copybacks", "GC erases", "WA", "TPS"],
        rows,
    )


def test_policy_matrix(benchmark):
    from conftest import run_once

    result = run_once(benchmark, run_matrix)

    for workload, by_policy in result["cells"].items():
        for policy, cell in by_policy.items():
            label = f"{workload}/{policy}"
            assert cell["write_amplification"] >= 1.0, label
            assert cell["erases"] > 0, f"{label}: GC never ran"
            assert cell["tps"] > 0, label

    # victim selection must actually matter under skew
    hotcold = result["cells"].get("hotcold", {})
    if {"greedy", "cost_benefit"} <= hotcold.keys():
        assert hotcold["greedy"]["copybacks"] != hotcold["cost_benefit"]["copybacks"]

    assert RESULT_PATH.exists()
    print(render_matrix(result))


if __name__ == "__main__":
    out = run_matrix()
    print(render_matrix(out))
    print(f"results written to {RESULT_PATH}")
