"""Ablation: number of regions — the parallelism/GC-isolation trade-off.

Section 2: "Intelligent data placement using regions is in the general
case an optimal trade off between the provided I/O-parallelism and the
overhead of GC."  Four object classes of increasing coldness run on a
16-die device partitioned into 1, 2, or 4 regions.  More regions isolate
GC better (fewer copybacks) but give each class fewer dies (less
parallelism); the sweet spot depends on the traffic mix.
"""

import random

from conftest import bench_mode, run_once

from repro.bench import ObjectClass, render_series, save_report
from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry


CLASSES = (
    ObjectClass("scorching", space_share=0.05, traffic_share=0.50),
    ObjectClass("hot", space_share=0.15, traffic_share=0.30),
    ObjectClass("warm", space_share=0.30, traffic_share=0.15),
    ObjectClass("cold", space_share=0.50, traffic_share=0.05),
)

#: grouping of the four classes for each region count
GROUPINGS = {
    1: [(0, 1, 2, 3)],
    2: [(0, 1), (2, 3)],
    4: [(0,), (1,), (2,), (3,)],
}

#: die budget per group (16 dies total), balanced so each group's region
#: can hold its space share at the run's 65% utilization, with the residue
#: given to the hottest groups ("sizes ... and their I/O rate")
DIE_SHARES = {
    1: [16],
    2: [6, 10],
    4: [3, 3, 4, 6],
}


def make_store():
    geometry = FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=24,
        pages_per_block=32,
        page_size=4096,
        oob_size=64,
    )
    return NoFTLStore.create(geometry)


def run_partitioned(num_regions: int, writes: int, seed: int = 6):
    store = make_store()
    groups = GROUPINGS[num_regions]
    shares = DIE_SHARES[num_regions]
    regions = []
    for gi, (group, dies) in enumerate(zip(groups, shares)):
        regions.append(
            store.create_region(RegionConfig(name=f"rg{gi}"), num_dies=dies)
        )
    region_of_class = {}
    for gi, group in enumerate(groups):
        for ci in group:
            region_of_class[ci] = regions[gi]

    total_safe = sum(r.engine.safe_capacity_pages() for r in regions)
    live = int(total_safe * 0.65)
    page_sets = {}
    t = 0.0
    payload = b"r" * 512
    for ci, cls in enumerate(CLASSES):
        region = region_of_class[ci]
        pages = region.allocate(max(1, int(live * cls.space_share)))
        for p in pages:
            t = region.write(p, payload, t)
        page_sets[ci] = pages

    rng = random.Random(seed)
    bounds = []
    acc = 0.0
    for cls in CLASSES:
        acc += cls.traffic_share
        bounds.append(acc)
    start = t
    cb0 = sum(r.stats.gc_copybacks for r in store.regions())
    er0 = sum(r.stats.gc_erases for r in store.regions())
    for __ in range(writes):
        draw = rng.random() * bounds[-1]
        ci = next(i for i, b in enumerate(bounds) if draw <= b)
        region = region_of_class[ci]
        t = region.write(rng.choice(page_sets[ci]), payload, t)
    copybacks = sum(r.stats.gc_copybacks for r in store.regions()) - cb0
    erases = sum(r.stats.gc_erases for r in store.regions()) - er0
    throughput = writes / ((t - start) / 1e6)
    return [num_regions, copybacks, erases, round(1 + copybacks / writes, 2), round(throughput)]


def sweep():
    writes = 30_000 if bench_mode() == "full" else 10_000
    return [run_partitioned(n, writes) for n in (1, 2, 4)]


def test_region_count(benchmark):
    rows = run_once(benchmark, sweep)

    copybacks = {row[0]: row[1] for row in rows}
    # GC isolation improves monotonically with partitioning on this skew
    assert copybacks[2] < copybacks[1]
    assert copybacks[4] <= copybacks[2] * 1.2  # diminishing returns allowed

    report = render_series(
        "Region-count ablation (4 object classes, 16 dies, 65% utilization)",
        ["regions", "GC copybacks", "GC erases", "WA", "writes/s"],
        rows,
    )
    save_report("region_count", report)
