"""Ablation: the paper's Section 1 motivation — FTL indirection overhead.

The same skewed write workload runs against four storage stacks:

1. a page-mapping FTL SSD (the black box the paper argues against);
2. a DFTL SSD with a small cached mapping table (limited on-device
   resources: translation-page traffic amplifies writes);
3. a hot/cold FTL that separates by an on-device update-frequency sketch
   (the best a knowledge-free controller can do, per [3, 4]);
4. NoFTL, one region (host-side management, no translation overhead);
5. NoFTL, hot/cold-separated regions (the paper's full proposal).

Expected shape: DFTL worst (translation I/O), plain FTL == mixed NoFTL
(same machinery), the hot/cold FTL in between, NoFTL regions best —
the paper's hierarchy of knowledge, measured.
"""

from conftest import bench_mode, run_once

from repro.bench import (
    SyntheticConfig,
    render_series,
    run_ftl_synthetic,
    run_noftl_synthetic,
    save_report,
)


def run_all():
    writes = 30_000 if bench_mode() == "full" else 10_000
    config = SyntheticConfig(writes=writes, utilization=0.65)
    return [
        run_ftl_synthetic(config, ftl="page"),
        run_ftl_synthetic(config, ftl="dftl", cmt_entries=256),
        run_ftl_synthetic(config, ftl="hotcold"),
        run_noftl_synthetic(config, separated=False),
        run_noftl_synthetic(config, separated=True),
    ]


def test_ftl_vs_noftl(benchmark):
    page_ftl, dftl, hotcold, noftl_mixed, noftl_regions = run_once(benchmark, run_all)

    # DFTL pays translation I/O on top of GC: lowest throughput
    assert dftl.writes_per_second < page_ftl.writes_per_second
    # the on-device heuristic helps, but DBMS knowledge helps more
    assert hotcold.copybacks < page_ftl.copybacks
    assert noftl_regions.copybacks < hotcold.copybacks
    # host-side NoFTL with regions beats every FTL variant
    assert noftl_regions.writes_per_second > page_ftl.writes_per_second
    assert noftl_regions.copybacks < page_ftl.copybacks
    # mixed NoFTL == page FTL (same machinery, same knowledge)
    assert noftl_mixed.copybacks == page_ftl.copybacks

    rows = [r.row() for r in (page_ftl, dftl, hotcold, noftl_mixed, noftl_regions)]
    rows[2][0] = "ftl-hotcold"
    rows[3][0] = "noftl-mixed"
    rows[4][0] = "noftl-regions"
    report = render_series(
        "FTL vs NoFTL (synthetic skewed writes, 8 dies, 65% utilization)",
        ["stack", "GC copybacks", "GC erases", "WA", "writes/s"],
        rows,
    )
    save_report("ftl_vs_noftl", report)
