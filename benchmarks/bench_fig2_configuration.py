"""Figure 2 — the multi-region data placement configuration for TPC-C.

Reproduces the paper's Figure 2 exactly: 6 regions over 64 dies with the
die counts 2 / 11 / 10 / 29 / 6 / 6, each region listing its database
objects.  The benchmark creates the configuration on a 64-die device,
verifies the die distribution and channel balance, and renders the table.
"""

from conftest import run_once

from repro.bench import render_series, save_report
from repro.core import NoFTLStore, figure2_placement
from repro.flash import instant_timing, paper_geometry


def build_figure2_store():
    store = NoFTLStore.create(paper_geometry(blocks_per_plane=4), timing=instant_timing())
    placement = figure2_placement(total_dies=64)
    for spec in placement.specs:
        store.create_region(spec.config, spec.num_dies)
    return store, placement


def test_fig2_configuration(benchmark):
    store, placement = run_once(benchmark, build_figure2_store)

    # the paper's exact die distribution
    counts = [spec.num_dies for spec in placement.specs]
    assert counts == [2, 11, 10, 29, 6, 6]
    assert sum(counts) == 64
    assert not store.manager.free_dies()

    # regions own disjoint die sets
    owned = [d for r in store.regions() for d in r.dies]
    assert len(owned) == len(set(owned)) == 64

    # large regions span all four channels for I/O parallelism
    for spec in placement.specs:
        region = store.region(spec.config.name)
        if spec.num_dies >= 4:
            assert len(region.channels_used()) == 4

    rows = []
    for index, spec in enumerate(placement.specs):
        region = store.region(spec.config.name)
        rows.append(
            [
                index,
                spec.config.name,
                "; ".join(spec.objects),
                spec.num_dies,
                "ch" + ",".join(str(c) for c in sorted(region.channels_used())),
            ]
        )
    report = render_series(
        "Figure 2 - multi-region data placement configuration for TPC-C",
        ["#", "region", "DB objects", "dies", "channels"],
        rows,
    )
    save_report("fig2_configuration", report)
