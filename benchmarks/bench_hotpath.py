"""Engine write-path throughput: incremental vs. seed scan bookkeeping.

Every simulated number in this repo funnels through
``FlashSpaceEngine.write``, so its Python-level cost bounds how large an
experiment is affordable.  The seed implementation rescanned every block of
a die — re-deriving each block's valid count page by page — on **every**
host write (die selection) and again per reclaimed block (victim
selection): O(blocks × pages) per page op.  The incremental bookkeeping
(maintained candidate buckets, integer popcounts, O(1) free pools) makes
the same decisions in O(1).

This harness measures steady-state engine ops/sec on a skewed-write
workload twice on the same device shape:

* ``incremental`` — the shipped bookkeeping;
* ``seed_scan``  — a :class:`DieBookkeeping` subclass that answers the
  same three hot-path questions (``has_reclaimable``, greedy victim,
  candidate iteration) by full per-call scans with per-page valid-count
  recomputation, faithfully reproducing the seed's cost model.

Both modes must report identical GC statistics (the scan picks the same
victims — that is the bit-identical guarantee), so the ratio is pure
bookkeeping overhead.  Results go to ``BENCH_hotpath.json`` at the repo
root so future PRs have a perf trajectory.

Run standalone (``python benchmarks/bench_hotpath.py``) or via pytest.
``REPRO_BENCH_MODE=full`` scales the measurement up.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))  # for conftest helpers

from conftest import bench_mode

from repro.flash import FlashDevice, FlashGeometry
from repro.mapping import (
    BlockState,
    DieBookkeeping,
    FlashSpaceEngine,
    ManagementStats,
    choose_victim_greedy,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


class SeedScanBookkeeping(DieBookkeeping):
    """The seed's cost model: every hot-path question is a fresh die scan.

    Valid counts are recomputed page by page (the seed summed a
    ``list[bool]`` per block), and the candidate list is rebuilt for die
    selection *and* victim selection alike.  Selection outcomes are
    identical to the incremental structures by construction.
    """

    def _scan_candidates(self):
        out = []
        for info in self.blocks:
            if info.state is BlockState.FULL:
                mask = info.valid_mask
                valid = sum(mask >> p & 1 for p in range(info.pages_per_block))
                if info.written - valid > 0:
                    out.append(info)
        return out

    @property
    def has_reclaimable(self) -> bool:
        return bool(self._scan_candidates())

    def greedy_victim(self):
        return choose_victim_greedy(self._scan_candidates())

    def iter_candidates(self):
        return iter(self._scan_candidates())


def hotpath_geometry() -> FlashGeometry:
    """4 dies x 1024 blocks x 32 pages — a big enough die that per-victim
    scans hurt the way they do at paper-experiment scale."""
    return FlashGeometry(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=512,
        pages_per_block=32,
        page_size=128,
        oob_size=16,
        max_pe_cycles=10_000_000,
    )


def build_engine(book_cls) -> FlashSpaceEngine:
    geometry = hotpath_geometry()
    device = FlashDevice(geometry)
    dies = list(range(geometry.dies))
    books = {
        d: book_cls(d, geometry.blocks_per_die, geometry.pages_per_block)
        for d in dies
    }
    return FlashSpaceEngine(device, dies, books, ManagementStats(), gc_policy="greedy")


def run_mode(book_cls, writes: int, checkpoint: int, seed: int = 7) -> dict:
    """Prefill, warm until GC is in steady state, then time skewed overwrites.

    The warmup loop runs until every die has been through several GC
    rounds; both cost models consume the identical RNG stream and make the
    identical decisions, so the warmup write count and all GC counters are
    exactly equal across modes.  ``checkpoint`` records the stats — and a
    timing split — after that many *timed* writes, letting the test
    compare the two modes at equal write counts even though the fast mode
    times many more: the reported speedup is the ratio of the
    equal-window (checkpoint) rates, so a run's fixed overhead is
    amortised over the same number of writes in both modes instead of
    skewing the mode with the bigger budget.
    """
    engine = build_engine(book_cls)
    rng = random.Random(seed)
    keys = int(engine.safe_capacity_pages() * 0.9)
    hot = max(1, keys // 4)
    payload = bytes(8)
    at = 0.0
    for key in range(keys):  # prefill: the device starts 90% full of live data
        at = engine.write(key, payload, at)

    def next_key() -> int:
        # 75% of traffic hammers the hot quarter of the key space
        return rng.randrange(hot) if rng.random() < 0.75 else rng.randrange(keys)

    warmup = 0
    while engine.stats.gc_erases < 8 * len(engine.dies):
        at = engine.write(next_key(), payload, at)
        warmup += 1
    base = engine.stats
    base_erases = base.gc_erases
    base_copybacks = base.gc_copybacks
    base_victim_valid = base.gc_victim_valid_pages
    at_checkpoint: dict | None = None
    split: float | None = None
    t0 = time.perf_counter()
    for i in range(writes):
        at = engine.write(next_key(), payload, at)
        if i + 1 == checkpoint:
            split = time.perf_counter() - t0
            at_checkpoint = {
                "gc_erases": engine.stats.gc_erases - base_erases,
                "gc_copybacks": engine.stats.gc_copybacks - base_copybacks,
                "gc_victim_valid_pages": engine.stats.gc_victim_valid_pages
                - base_victim_valid,
            }
    elapsed = time.perf_counter() - t0
    stats = engine.stats
    return {
        "writes": writes,
        "warmup_writes": warmup,
        "elapsed_s": round(elapsed, 4),
        "ops_per_sec": round(writes / elapsed, 1),
        "checkpoint_writes": checkpoint if split is not None else None,
        "checkpoint_elapsed_s": round(split, 4) if split is not None else None,
        "checkpoint_ops_per_sec": round(checkpoint / split, 1) if split else None,
        "gc_erases": stats.gc_erases - base_erases,
        "gc_copybacks": stats.gc_copybacks - base_copybacks,
        "gc_victim_valid_pages": stats.gc_victim_valid_pages - base_victim_valid,
        "at_checkpoint": at_checkpoint,
    }


def run_bench() -> dict:
    mode = bench_mode()
    opt_writes = 200_000 if mode == "full" else 20_000
    scan_writes = 10_000 if mode == "full" else 2_000
    incremental = run_mode(DieBookkeeping, opt_writes, checkpoint=scan_writes)
    seed_scan = run_mode(SeedScanBookkeeping, scan_writes, checkpoint=scan_writes)
    geometry = hotpath_geometry()
    result = {
        "benchmark": "engine write-path throughput (skewed overwrites, steady state)",
        "mode": mode,
        "engine_core": "array",  # flat-column block/page state, packed addresses
        "geometry": {
            "dies": geometry.dies,
            "blocks_per_die": geometry.blocks_per_die,
            "pages_per_block": geometry.pages_per_block,
        },
        "incremental": incremental,
        "seed_scan": seed_scan,
        # equal-window ratio: both rates cover exactly `scan_writes` timed
        # writes from the same warmed-up state, so fixed per-run overhead
        # cancels instead of deflating the mode with the bigger budget
        "speedup": round(
            incremental["checkpoint_ops_per_sec"] / seed_scan["checkpoint_ops_per_sec"], 2
        ),
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_hotpath(benchmark):
    from conftest import run_once

    result = run_once(benchmark, run_bench)
    # the optimisation must be worth its complexity...
    assert result["speedup"] >= 3.0, f"hot path regressed: {result}"
    # ...and observationally pure: same RNG stream + same decisions means
    # that at equal write counts the GC counters must match exactly
    inc, scan = result["incremental"], result["seed_scan"]
    assert inc["warmup_writes"] == scan["warmup_writes"], f"warmup diverged: {result}"
    assert inc["at_checkpoint"] == scan["at_checkpoint"], f"GC diverged: {result}"


if __name__ == "__main__":
    out = run_bench()
    print(json.dumps(out, indent=2))
    if out["speedup"] < 3.0:
        sys.exit(f"hot path speedup {out['speedup']}x is below the 3x floor")
