"""Ablation: the placement advisor reproduces the paper's methodology.

The authors built Figure 2 by hand: "we have divided database objects of
TPC-C based on their I/O properties into 6 regions. Further we have
distributed 64 dies ... based on sizes of objects and their I/O rate."
:func:`repro.core.advisor.suggest_placement` mechanises exactly that —
cluster by update density, allocate dies by I/O rate with a size-driven
capacity repair.  This bench profiles TPC-C, runs the advisor, and checks
the advised placement against the paper's qualitative groupings.
"""

from conftest import bench_mode, run_once

from repro.bench import TPCCExperimentConfig, build_database, render_series, save_report
from repro.core import suggest_placement, traditional_placement
from repro.flash import paper_geometry
from repro.tpcc import Driver, ScaleConfig, load_database


def profile_and_advise():
    geometry = paper_geometry(blocks_per_plane=4, pages_per_block=32)
    scale = ScaleConfig(
        warehouses=2,
        districts=10,
        customers_per_district=150 if bench_mode() == "quick" else 300,
        items=3000 if bench_mode() == "quick" else 6000,
        initial_orders_per_district=30,
    )
    config = TPCCExperimentConfig(
        name="profile",
        placement=traditional_placement(64),
        geometry=geometry,
        scale=scale,
        num_transactions=1000,
        terminals=8,
        buffer_pages=1024,
        flusher_interval=256,
    )
    db = build_database(config)
    t = load_database(db, scale, seed=42)
    Driver(db, scale, terminals=8, seed=42).run(
        num_transactions=1000 if bench_mode() == "quick" else 2000, start_us=t
    )
    stats = db.object_stats()
    safe_per_die = (geometry.blocks_per_die - 5) * geometry.pages_per_block
    placement = suggest_placement(
        stats,
        total_dies=64,
        max_regions=6,
        name="advised",
        safe_pages_per_die=safe_per_die,
        headroom=1.8,
    )
    return stats, placement


def test_advisor_placement(benchmark):
    stats, placement = run_once(benchmark, profile_and_advise)

    assert placement.total_dies == 64
    assert 2 <= len(placement.specs) <= 6
    # every profiled object is placed exactly once
    assert sorted(placement.objects()) == sorted(s.name for s in stats)

    # qualitative agreement with the paper's groupings:
    # scorching WAREHOUSE/DISTRICT never share a region with cold ITEM
    assert placement.region_of("WAREHOUSE") != placement.region_of("ITEM")
    assert placement.region_of("DISTRICT") != placement.region_of("ITEM")
    # the append-only stream is separated from the scorching row updates
    assert placement.region_of("ORDERLINE") != placement.region_of("WAREHOUSE")

    by_stats = {s.name: s for s in stats}
    rows = []
    for spec in placement.specs:
        io = sum(by_stats[o].io_rate for o in spec.objects)
        size = sum(by_stats[o].size_pages for o in spec.objects)
        rows.append(
            [spec.config.name, spec.num_dies, size, io, "; ".join(spec.objects)]
        )
    report = render_series(
        "Advisor placement from measured TPC-C statistics (paper's method, mechanised)",
        ["region", "dies", "pages", "I/Os", "objects"],
        rows,
    )
    save_report("advisor_placement", report)
