"""Ablation: I/O parallelism from striping over dies and channels.

Section 2: "the distribution over available Flash data channels, dies or
planes allows for better I/O parallelism than storing those blocks in
sequential order physically on Flash."  We measure sustained random-read
and random-write throughput of a region as its die count grows from 1 to
16, with 8 concurrent streams.  Expected shape: near-linear scaling until
the channel count (4) bounds reads, and write scaling until program time
dominates.
"""

import heapq
import random

from conftest import bench_mode, run_once

from repro.bench import render_series, save_report
from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry


def make_store(dies: int) -> NoFTLStore:
    geometry = FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=1,
        blocks_per_plane=64,
        pages_per_block=32,
        page_size=4096,
        oob_size=64,
    )
    return NoFTLStore.create(geometry)


def run_streams(region, pages, ops, read_fraction, start_at, streams=8, seed=3):
    """Closed-loop streams issuing random I/O; returns ops/simulated-second."""
    rng = random.Random(seed)
    clocks = [(start_at, i) for i in range(streams)]
    heapq.heapify(clocks)
    payload = b"p" * 512
    start = start_at
    end = start_at
    for __ in range(ops):
        t, stream = heapq.heappop(clocks)
        page = rng.choice(pages)
        if rng.random() < read_fraction:
            __, done = region.read(page, t)
        else:
            done = region.write(page, payload, t)
        end = max(end, done)
        heapq.heappush(clocks, (done, stream))
    return ops / ((end - start) / 1e6)


def sweep():
    ops = 8000 if bench_mode() == "full" else 3000
    rows = []
    for dies in (1, 2, 4, 8, 16):
        store = make_store(dies)
        region = store.create_region(RegionConfig(name="rg"), num_dies=dies)
        pages = region.allocate(min(region.capacity_pages() // 2, 512 * dies))
        payload = b"p" * 512
        t = 0.0
        for p in pages:
            t = region.write(p, payload, t)
        read_iops = run_streams(region, pages, ops, read_fraction=1.0, start_at=t)
        write_iops = run_streams(region, pages, ops, read_fraction=0.0, start_at=t)
        rows.append([dies, len(region.channels_used()), read_iops, write_iops])
    return rows


def test_parallelism_scaling(benchmark):
    rows = run_once(benchmark, sweep)

    reads = [r[2] for r in rows]
    writes = [r[3] for r in rows]
    # throughput grows with dies ...
    assert reads[-1] > reads[0] * 2.5
    assert writes[-1] > writes[0] * 2.5
    # ... and read scaling 1->4 dies is near-linear (one die per channel)
    assert reads[2] > reads[0] * 2.5

    report = render_series(
        "I/O parallelism vs region die count (8 closed-loop streams)",
        ["dies", "channels", "read IOPS", "write IOPS"],
        rows,
    )
    save_report("parallelism", report)
