"""Ablation: GC victim-selection policy (greedy vs cost-benefit).

DESIGN.md design choice 1.  Under mixed hot/cold traffic, cost-benefit
(age-weighted) victim selection avoids repeatedly collecting young hot
blocks whose remaining pages are about to die anyway; greedy is optimal
for uniform traffic.  We run the mixed-placement synthetic workload under
both policies and report GC work.
"""

from conftest import bench_mode, run_once

from repro.bench import SyntheticConfig, render_series, run_noftl_synthetic, save_report


def sweep():
    writes = 30_000 if bench_mode() == "full" else 10_000
    rows = []
    results = {}
    for policy in ("greedy", "cost_benefit"):
        config = SyntheticConfig(writes=writes, gc_policy=policy)
        result = run_noftl_synthetic(config, separated=False)
        results[policy] = result
        row = result.row()
        row[0] = policy
        rows.append(row)
    return rows, results


def test_gc_policy(benchmark):
    rows, results = run_once(benchmark, sweep)

    greedy = results["greedy"]
    cost_benefit = results["cost_benefit"]
    # both policies keep the device functional and within sane WA bounds
    assert greedy.erases > 0 and cost_benefit.erases > 0
    assert 1.0 <= greedy.write_amplification < 5.0
    assert 1.0 <= cost_benefit.write_amplification < 5.0
    # the policies must actually behave differently under skew
    assert greedy.copybacks != cost_benefit.copybacks

    report = render_series(
        "GC policy ablation (mixed hot/cold placement)",
        ["policy", "GC copybacks", "GC erases", "WA", "writes/s"],
        rows,
    )
    save_report("gc_policy", report)
