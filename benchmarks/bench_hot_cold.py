"""Ablation: GC overhead vs hot/cold separation (paper Section 2, [3, 4]).

The paper's core mechanism: "the overhead of garbage collection ... is
highly dependent on the ability to separate between hot and cold data".
A synthetic two-class workload (12.5% of pages receive 90% of updates)
runs mixed in one region vs separated into per-class regions on the same
8-die device at 70% utilization.  Expected shape: separation cuts
copybacks by a large factor and erases meaningfully, raising sustained
write throughput.
"""

from conftest import bench_mode, run_once

from repro.bench import (
    SyntheticConfig,
    render_series,
    run_noftl_synthetic,
    save_report,
)


def _config():
    writes = 40_000 if bench_mode() == "full" else 12_000
    return SyntheticConfig(writes=writes)


def run_pair():
    config = _config()
    mixed = run_noftl_synthetic(config, separated=False)
    separated = run_noftl_synthetic(config, separated=True)
    return mixed, separated


def test_hot_cold_separation(benchmark):
    mixed, separated = run_once(benchmark, run_pair)

    # the paper's direction: separation reduces GC work and lifts throughput
    assert separated.copybacks < mixed.copybacks * 0.6, (
        f"separation should cut copybacks sharply: {separated.copybacks} vs {mixed.copybacks}"
    )
    assert separated.erases <= mixed.erases
    assert separated.writes_per_second > mixed.writes_per_second

    report = render_series(
        "Hot/cold separation ablation (synthetic, 8 dies, 70% utilization)",
        ["placement", "GC copybacks", "GC erases", "WA", "writes/s"],
        [mixed.row(), separated.row()],
    )
    save_report("hot_cold_separation", report)
