"""Ablation: crash-recovery scan cost vs. device fill.

Under NoFTL the translation state is host memory; after a crash it is
rebuilt by scanning page metadata (the native interface's OOB command).
This benchmark measures the recovery scan's *simulated* cost as the device
fills — the operational price of removing the FTL, which the companion
paper (NoFTL for real, EDBT'15) discusses.  Expected shape: scan time
grows linearly with programmed pages, and OOB reads cost far less than
full page reads would.
"""

import random

from conftest import bench_mode, run_once

from repro.bench import render_series, save_report
from repro.core import NoFTLStore, RegionConfig
from repro.flash import FlashGeometry


def make_store(device=None):
    geometry = FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=32,
        page_size=4096,
        oob_size=64,
    )
    store = NoFTLStore.create(geometry) if device is None else NoFTLStore(device)
    store.create_region(RegionConfig(name="rg"), num_dies=8, dies=list(range(8)))
    return store


def run_point(fill_fraction, seed=12):
    store = make_store()
    region = store.region("rg")
    pages = region.allocate(max(1, int(region.capacity_pages() * fill_fraction)))
    rng = random.Random(seed)
    t = 0.0
    for p in pages:
        t = region.write(p, b"d" * 512, t)
    # some overwrites so stale versions exist on flash
    for __ in range(len(pages) // 2):
        t = region.write(rng.choice(pages), b"u" * 512, t)

    crashed = make_store(device=store.device)
    reads_before = store.device.stats.reads
    scan_start = t
    end = crashed.recover(at=t)
    scanned = store.device.stats.reads - reads_before
    live = crashed.region("rg").used_pages()
    return [
        f"{fill_fraction:.0%}",
        scanned,
        live,
        round((end - scan_start) / 1000.0, 1),
    ]


def test_recovery_scan_cost(benchmark):
    fills = (0.2, 0.4, 0.6, 0.8) if bench_mode() == "full" else (0.25, 0.75)

    def sweep():
        return [run_point(f) for f in fills]

    rows = run_once(benchmark, sweep)

    scans = [row[1] for row in rows]
    times = [row[3] for row in rows]
    # scan cost grows with fill, roughly linearly
    assert scans[-1] > scans[0] * 1.5
    assert times[-1] > times[0]
    # every point recovered all its live pages
    for row in rows:
        assert row[2] > 0

    report = render_series(
        "Crash-recovery scan cost vs device fill (8 dies, OOB metadata scan)",
        ["fill", "pages scanned", "live pages restored", "scan ms (simulated)"],
        rows,
    )
    save_report("recovery_scan", report)
