"""Shared benchmark configuration.

``REPRO_BENCH_MODE`` selects the scale:

* ``quick`` (default) — minutes-scale run that still shows every effect's
  direction; used in CI.
* ``full``  — the paper-scale calibration used for EXPERIMENTS.md numbers.
"""

import os

import pytest


def bench_mode() -> str:
    mode = os.environ.get("REPRO_BENCH_MODE", "quick")
    if mode not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_MODE must be quick|full, got {mode!r}")
    return mode


@pytest.fixture(scope="session")
def mode() -> str:
    return bench_mode()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation experiments (deterministic given the seed), so a
    single round measures wall-clock cost without re-running a multi-minute
    simulation five times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
