"""Ablation: throughput scaling with concurrency (closed-loop terminals).

The paper's gains materialise under concurrency: one terminal keeps at
most one I/O in flight, so placement barely matters; with many terminals
the device's parallelism and GC interference decide throughput.  This
sweep runs the same TPC-C population with 1..16 terminals and reports TPS
and read latency — the saturation curve every storage evaluation starts
with.
"""

from dataclasses import replace

from conftest import bench_mode, run_once

from repro.bench import TPCCExperimentConfig, render_series, run_tpcc_experiment, save_report
from repro.core import traditional_placement
from repro.flash import paper_geometry
from repro.tpcc import ScaleConfig


def sweep():
    # one warehouse: every terminal shares the same data, so the sweep
    # isolates concurrency (more warehouses would grow the working set)
    scale = ScaleConfig(
        warehouses=1,
        districts=10,
        customers_per_district=150,
        items=3000,
        initial_orders_per_district=40,
    )
    budget = 4000 if bench_mode() == "full" else 1600
    base = TPCCExperimentConfig(
        name="terminals",
        placement=traditional_placement(64),
        geometry=paper_geometry(blocks_per_plane=5, pages_per_block=32),
        scale=scale,
        num_transactions=budget,
        buffer_pages=768,
        flusher_interval=256,
    )
    rows = []
    for terminals in (1, 2, 4, 8, 16):
        result = run_tpcc_experiment(replace(base, terminals=terminals))
        rows.append(
            [
                terminals,
                round(result.row("tps")),
                round(result.row("read_latency_us")),
                round(result.row("NewOrder_ms"), 2),
            ]
        )
    return rows


def test_terminal_scaling(benchmark):
    rows = run_once(benchmark, sweep)

    tps = [row[1] for row in rows]
    # more terminals -> more throughput, with diminishing returns
    assert tps[2] > tps[0] * 1.8, f"4 terminals should beat 1 by ~2x: {tps}"
    assert tps[-1] > tps[2]
    # latency rises under concurrency (queueing becomes visible)
    assert rows[-1][2] >= rows[0][2]

    report = render_series(
        "Throughput vs closed-loop terminals (TPC-C, traditional placement)",
        ["terminals", "TPS", "read latency us", "NewOrder ms"],
        rows,
    )
    save_report("terminal_scaling", report)
