"""Ablation: placing *partitions* of one object in different regions.

Section 2: regions can hold "complete objects or partitions of them".
An aging table (think ORDERLINE: a hot recent tail, a cold bulk) runs as

* one table in one region — hot and cold rows share erase blocks;
* the same table range-partitioned by key, hot partition in a small hot
  region, cold partition in a large cold region.

Same device, same rows, same update stream; only the placement below the
table abstraction differs.  Expected shape: partitioning cuts GC copyback
work like object-level separation does.
"""

import random

from conftest import bench_mode, run_once

from repro.bench import render_series, save_report
from repro.core import RegionConfig
from repro.db import Database, RangePartition, Schema, char_col, int_col
from repro.flash import FlashGeometry


def geometry():
    return FlashGeometry(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=32,
        page_size=4096,
        oob_size=64,
    )


ROWS = 3000
HOT_CUTOFF = 2400  # rows with id >= cutoff receive 90% of the updates


def make_db():
    db = Database.on_native_flash(
        geometry=geometry(), buffer_pages=48, flusher_interval=16, system_dies=1
    )
    db.execute("CREATE REGION rgCold (DIES=5)")
    db.execute("CREATE REGION rgHot (DIES=2)")
    return db


def run_workload(table, updates, seed=8):
    rng = random.Random(seed)
    t = 0.0
    rids = []
    for i in range(ROWS):
        rid, t = table.insert((i, "x" * 460), t)
        rids.append(rid)
    start = t
    for __ in range(updates):
        if rng.random() < 0.9:
            pick = rng.randrange(HOT_CUTOFF, ROWS)
        else:
            pick = rng.randrange(0, HOT_CUTOFF)
        rids[pick], t = table.update_columns(rids[pick], {"payload": "y" * 460}, t)
    return t - start


def run_single(updates):
    db = make_db()
    db.execute("CREATE TABLESPACE tsAll (REGION=rgCold)")
    db.execute("CREATE TABLE aging (id INT, payload CHAR(480)) TABLESPACE tsAll")
    # the single table lives in the big region, holding its data at the
    # same utilization the partitioned cold region sees
    duration = run_workload(db.table("aging"), updates)
    stats = db.store.aggregate_stats()
    return stats, duration


def run_partitioned(updates):
    db = make_db()
    schema = Schema([int_col("id"), char_col("payload", 480)])
    table = db.create_partitioned_table(
        "aging",
        schema,
        RangePartition("id", [HOT_CUTOFF]),
        regions=["rgCold", "rgHot"],
    )
    duration = run_workload(table, updates)
    stats = db.store.aggregate_stats()
    return stats, duration


def test_partition_placement(benchmark):
    updates = 25_000 if bench_mode() == "full" else 9_000

    def run_pair():
        return run_single(updates), run_partitioned(updates)

    (single, single_dur), (parted, parted_dur) = run_once(benchmark, run_pair)

    assert parted["gc_copybacks"] < single["gc_copybacks"] * 0.7, (
        "partition placement should cut copybacks sharply"
    )
    assert parted["gc_erases"] <= single["gc_erases"] * 1.05

    rows = [
        [
            "single table, one region",
            single["gc_copybacks"],
            single["gc_erases"],
            round(updates / (single_dur / 1e6)),
        ],
        [
            "partitioned hot/cold regions",
            parted["gc_copybacks"],
            parted["gc_erases"],
            round(updates / (parted_dur / 1e6)),
        ],
    ]
    report = render_series(
        "Partition placement ablation (aging table, 90%-hot tail)",
        ["configuration", "GC copybacks", "GC erases", "updates/s"],
        rows,
    )
    save_report("partitioning", report)
