"""Figure 3 — traditional vs multi-region TPC-C data placement.

The paper's headline experiment (Section 3): the same TPC-C stream runs on
the same 64-die native flash device under two placements —

* **traditional**: one region over all dies, pages of all objects
  interleave in erase blocks in arrival order;
* **regions**: the paper's Figure 2 object groups, with die counts derived
  by the paper's own allocation rule ("based on sizes of objects and their
  I/O rate") applied to profiled statistics of *this* database — see
  ``derive_method_placement``.  (The paper's literal 2/11/10/29/6/6 die
  counts were fitted to their ~100-warehouse database; EXPERIMENTS.md
  discusses the difference.)

Reported rows mirror Figure 3 exactly: TPS, READ/WRITE 4 KB latency,
NewOrder/Payment/StockLevel response times, transactions, host READ/WRITE
I/Os, GC COPYBACKs, GC ERASEs.

What reproduces at laptop scale (see EXPERIMENTS.md for the full account):
the GC rows — fewer COPYBACKs and ERASEs under regions — and the read
latency direction.  The paper's +20% TPS does not: their testbed ran
GC-bound (write amplification ≈ 2.3-2.6 vs our ≈ 1.1), where GC savings
convert into throughput; `bench_hot_cold.py` demonstrates exactly that
regime in isolation.
"""

from dataclasses import replace

from conftest import bench_mode, run_once

from repro.bench import (
    TPCCExperimentConfig,
    derive_method_placement,
    figure3_table,
    run_tpcc_experiment,
    save_report,
)
from repro.core import traditional_placement
from repro.flash import paper_geometry
from repro.tpcc import ScaleConfig


def experiment_config() -> tuple[TPCCExperimentConfig, int]:
    if bench_mode() == "full":
        scale = ScaleConfig(
            warehouses=2,
            districts=10,
            customers_per_district=300,
            items=6000,
            initial_orders_per_district=60,
        )
        budget = 8000
        buffer_pages = 1024
    else:
        scale = ScaleConfig(
            warehouses=2,
            districts=10,
            customers_per_district=150,
            items=3000,
            initial_orders_per_district=40,
        )
        budget = 3000
        buffer_pages = 768
    config = TPCCExperimentConfig(
        name="base",
        geometry=paper_geometry(blocks_per_plane=5, pages_per_block=32),
        scale=scale,
        num_transactions=budget,
        terminals=8,
        buffer_pages=buffer_pages,
        flusher_interval=256,
        flusher_batch=8,
    )
    return config, budget


def run_pair():
    config, budget = experiment_config()
    placement = derive_method_placement(config, budget)
    traditional = run_tpcc_experiment(
        replace(config, name="traditional", placement=traditional_placement(64))
    )
    regions = run_tpcc_experiment(replace(config, name="regions", placement=placement))
    return traditional, regions, placement


def test_fig3_tpcc(benchmark):
    traditional, regions, placement = run_once(benchmark, run_pair)

    # --- the shapes that reproduce (paper: -19% copybacks, -4.3% erases) ---
    assert regions.row("gc_copybacks") < traditional.row("gc_copybacks") * 0.85, (
        "multi-region placement must cut GC copybacks"
    )
    assert regions.row("gc_erases") <= traditional.row("gc_erases") * 1.01, (
        "multi-region placement must not erase more"
    )
    # throughput stays in the same ballpark (the paper's +20% needs a
    # GC-bound device; see module docstring and EXPERIMENTS.md)
    assert regions.row("tps") > traditional.row("tps") * 0.85

    # both configurations executed the same stream correctly
    assert regions.row("transactions") == traditional.row("transactions")

    lines = [figure3_table(traditional, regions), "", "placement derived by the paper's method:"]
    for spec in placement.specs:
        lines.append(f"  {spec.config.name:<14} {spec.num_dies:>2} dies  {'; '.join(spec.objects)}")
    lines.append("")
    lines.append("per-region detail (regions configuration):")
    for name, stats in regions.per_region.items():
        lines.append(
            f"  {name:<14} host R/W {stats['host_reads']:>8.0f}/{stats['host_writes']:>8.0f}"
            f"  GC copybacks {stats['gc_copybacks']:>7.0f}  erases {stats['gc_erases']:>6.0f}"
        )
    wa_t = 1 + traditional.row("gc_copybacks") / traditional.row("host_writes")
    wa_r = 1 + regions.row("gc_copybacks") / regions.row("host_writes")
    lines.append("")
    lines.append(f"write amplification: traditional {wa_t:.3f}, regions {wa_r:.3f}")

    def victim_quality(result):
        erases = result.row("gc_erases")
        return result.row("gc_victim_valid_pages") / erases if erases else 0.0

    lines.append(
        "live pages per GC victim (hot/cold mixing measure): "
        f"traditional {victim_quality(traditional):.2f}, regions {victim_quality(regions):.2f}"
    )
    save_report("fig3_tpcc", "\n".join(lines))
